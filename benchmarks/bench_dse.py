"""DSE acceptance benchmark: the explorer must answer the capacity question.

One full sweep of the committed demo space (``repro dse --seed 0``:
32 fleet shapes x 2 traffic regimes through the virtual-clock cluster
simulator) feeds ``benchmarks/BENCH_dse.json``:

- the **Pareto frontier** over p99 latency, device-seconds, area-mm²,
  reconfiguration rate and GFLOPS/W (energy efficiency populated by the
  fleet-level energy model),
- the **capacity answer** — cheapest configuration meeting the default
  SLO (p99 <= 50 ms) at the default arrival rate (400 rps).

Everything except ``points_per_s`` (sweep wall-clock throughput,
excluded from the band guard) is byte-deterministic per seed, so the
band guard pins the headline values at the usual 10% tolerance and the
``dse-smoke`` CI job additionally ``cmp``s two full reports.

Regenerate the committed record with ``python benchmarks/bench_dse.py``
after an intentional model change (and say why in the commit).
"""

import json
import time
from pathlib import Path

from repro.dse import demo_space, run_dse
from repro.experiments.report import ExperimentTable

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_dse.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GUARD_RELATIVE_TOLERANCE = 0.10

SEED = 0


def measure() -> dict:
    started = time.perf_counter()
    report = run_dse(seed=SEED)
    elapsed = time.perf_counter() - started
    doc = report.as_dict()
    by_id = {record["id"]: record for record in doc["points"]}
    frontier = [
        {
            "id": identity,
            "solver_mix": by_id[identity]["shape"]["solver_mix"],
            "p99_ms": by_id[identity]["metrics"]["p99_ms"],
            "device_seconds": by_id[identity]["metrics"][
                "device_seconds"
            ],
            "area_mm2": by_id[identity]["metrics"]["area_mm2"],
            "reconfig_rate_per_s": by_id[identity]["metrics"][
                "reconfig_rate_per_s"
            ],
            "gflops_per_watt": by_id[identity]["metrics"][
                "gflops_per_watt"
            ],
        }
        for identity in doc["frontier"]
    ]
    return {
        "space": {
            "seed": SEED,
            "shapes": len(report.space.shapes),
            "traffic_specs": len(report.space.traffic),
            "points": len(report.space),
        },
        "evaluated": doc["dse"]["evaluated"],
        "failed": doc["dse"]["failed"],
        "frontier": frontier,
        "frontier_size": len(frontier),
        "best_gflops_per_watt": max(
            record["metrics"]["gflops_per_watt"]
            for record in doc["points"]
        ),
        "capacity": doc["capacity"],
        "points_per_s": round(len(report.space) / elapsed, 1),
    }


def run() -> tuple[ExperimentTable, dict]:
    report = measure()
    table = ExperimentTable(
        experiment_id="DSE",
        title=(
            "Fleet design-space exploration "
            f"(seed={SEED}, {report['space']['shapes']} shapes x "
            f"{report['space']['traffic_specs']} regimes)"
        ),
        headers=(
            "frontier point", "p99 ms", "dev-s", "mm2", "cfg/s",
            "GFLOPS/W",
        ),
    )
    for record in report["frontier"]:
        table.add_row(
            record["id"],
            round(record["p99_ms"], 3),
            round(record["device_seconds"], 4),
            round(record["area_mm2"], 3),
            round(record["reconfig_rate_per_s"], 2),
            round(record["gflops_per_watt"], 3),
        )
    cheapest = report["capacity"]["cheapest"]
    query = report["capacity"]["query"]
    if cheapest is None:
        table.add_note(
            "capacity: no feasible configuration for "
            f"p99 <= {query['slo_p99_ms']:g} ms at "
            f">= {query['rate_rps']:g} rps"
        )
    else:
        table.add_note(
            f"capacity: {cheapest['id']} is the cheapest fleet meeting "
            f"p99 <= {query['slo_p99_ms']:g} ms at "
            f">= {query['rate_rps']:g} rps "
            f"({cheapest['fabric_mm2_seconds']:.3f} mm2-s)"
        )
    return table, report


def test_bench_dse(benchmark, print_table):
    table, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    # Sweep integrity: every point evaluated, none failed.
    assert report["evaluated"] == report["space"]["points"]
    assert report["failed"] == 0
    # Frontier acceptance: non-trivial (real trade-offs survive), with
    # the energy objective populated, and the paper's default solver
    # mix on the frontier — the headline sanity check.
    assert report["frontier_size"] >= 3
    assert all(
        record["gflops_per_watt"] > 0 for record in report["frontier"]
    )
    assert any(
        record["solver_mix"] == "paper-default"
        for record in report["frontier"]
    )
    # Capacity acceptance: the default query has a feasible answer.
    assert report["capacity"]["cheapest"] is not None
    # Band guard: DSE headline values must not drift.
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    measured = {
        "dse_frontier_size": float(report["frontier_size"]),
        "dse_best_gflops_per_watt": report["best_gflops_per_watt"],
        "dse_capacity_fabric_mm2_seconds": report["capacity"][
            "cheapest"
        ]["fabric_mm2_seconds"],
    }
    failures = []
    for name, value in measured.items():
        reference = float(bands[name])
        low = (1.0 - GUARD_RELATIVE_TOLERANCE) * reference
        high = (1.0 + GUARD_RELATIVE_TOLERANCE) * reference
        if not low <= value <= high:
            failures.append(
                f"{name}: measured {value:.4f} outside "
                f"[{low:.4f}, {high:.4f}]"
            )
    assert not failures, "; ".join(failures)


def test_committed_record_meets_acceptance():
    """The committed record answers the capacity question with GFLOPS/W
    populated — the contract the ``dse-smoke`` CI job pins."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    assert committed["failed"] == 0
    assert committed["frontier_size"] >= 3
    assert all(
        record["gflops_per_watt"] > 0
        for record in committed["frontier"]
    )
    assert any(
        record["solver_mix"] == "paper-default"
        for record in committed["frontier"]
    )
    cheapest = committed["capacity"]["cheapest"]
    assert cheapest is not None
    assert cheapest["p99_ms"] <= committed["capacity"]["query"][
        "slo_p99_ms"
    ]


def test_committed_record_matches_demo_space():
    """The committed record was produced from the current demo space."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    space = demo_space()
    assert committed["space"]["shapes"] == len(space.shapes)
    assert committed["space"]["points"] == len(space)


def main() -> int:  # pragma: no cover - CLI
    table, report = run()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(table.to_text())
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
