"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure over all 25 Table II
stand-ins and prints the series.  Numerical solves are cached in
``repro.experiments.runner`` across benchmarks, so the whole suite performs
each dataset's solves exactly once.
"""

import pytest


@pytest.fixture
def print_table(capsys):
    """Print an ExperimentTable to the real terminal (outside capture)."""

    def _print(table):
        with capsys.disabled():
            print("\n" + table.to_text() + "\n")

    return _print


@pytest.fixture
def print_text(capsys):
    """Print arbitrary text to the real terminal (outside capture)."""

    def _print(text):
        with capsys.disabled():
            print(text + "\n")

    return _print
