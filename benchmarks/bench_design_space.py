"""Design-space exploration: the Pareto frontier of Section VII's knobs.

Sweeps SamplingRate x rOpt x MSID-tolerance for a few representative
datasets and prints each Pareto-efficient configuration — the operational
answer to "what parameters should I deploy for this workload?".  The
paper's defaults (32 / 8 / 0.15) should land on or near the frontier.
"""

from repro.core.design_space import evaluate_point, explore, pareto_front
from repro.experiments import runner
from repro.experiments.report import ExperimentTable

KEYS = ("2C", "Wi", "Cr")


def run(keys=KEYS) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="Ablation A5",
        title="Pareto-efficient Resource-Decision-loop configurations",
        headers=(
            "ID", "S", "rOpt", "tol", "spmv_cycles", "RU",
            "events", "reconfig_ms",
        ),
    )
    for key in keys:
        matrix = runner.problem(key).matrix
        front = pareto_front(explore(matrix))
        for p in front:
            table.add_row(
                key, p.sampling_rate, p.r_opt, p.msid_tolerance,
                p.spmv_cycles, p.underutilization, p.reconfig_events,
                p.reconfig_seconds * 1e3,
            )
    table.add_note(
        "paper defaults (S=32, rOpt=8, tol=0.15) sit at the latency/"
        "overhead knee; see tests for the near-frontier assertion"
    )
    return table


def test_bench_design_space(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    assert table.rows
    # The paper's default configuration must be at or near the frontier:
    # no Pareto point may beat it in every objective by a wide margin.
    for key in KEYS:
        matrix = runner.problem(key).matrix
        default = evaluate_point(matrix, 32, 8, 0.15)
        front = pareto_front(explore(matrix))
        crushed = [
            p for p in front
            if p.spmv_cycles < default.spmv_cycles * 0.8
            and p.underutilization < default.underutilization * 0.8
            and p.reconfig_seconds < default.reconfig_seconds * 0.8
        ]
        assert not crushed, (key, crushed[:2])
