"""Figure 7: resource-underutilization improvement ratio vs baseline URB."""

from repro.experiments import fig7


def test_bench_fig7_ru_improvement(benchmark, print_table):
    table = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    print_table(table)
    for row in table.rows:
        # Improvement grows as the baseline over-allocates.
        assert row[-1] > row[1]
    best = max(max(row[1:]) for row in table.rows)
    assert best > 2.0  # paper: up to ~3x
