"""Figure 10: performance efficiency (GFLOPS/mm^2) and area saving."""

from repro.experiments import fig10


def test_bench_fig10_perf_efficiency(benchmark, print_table):
    table = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    print_table(table)
    mean = table.rows[-1]
    acamar_eff, static_eff, saving = mean[1], mean[2], mean[5]
    # Paper: ~720 GFLOPS/mm^2 average, ~2x area efficiency; a few
    # datasets fall below the baseline (highly random sparsity).
    assert 300 < acamar_eff < 1500
    assert acamar_eff > static_eff * 0.9
    assert saving > 1.0
    below_baseline = sum(1 for row in table.rows[:-1] if row[1] < row[2])
    assert below_baseline < len(table.rows) / 2
