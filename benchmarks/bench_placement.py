"""Mixed-fleet placement acceptance benchmark (Table II scenario matrix).

Serves the same four-source trace (two FPGA-favored, two GPU-favored
structural profiles) through three fleets of equal slot count:

- ``fpga_only`` — four FPGA partial-reconfiguration slots,
- ``gpu_only``  — four MPS GPU tenant partitions,
- ``mixed``     — two FPGA slots + two GPU tenants, per-micro-batch
  placement decided by the two cost models.

The acceptance criterion of the placement backend is that the mixed
fleet beats *both* single-backend fleets on device-seconds (and p50)
at every probed rate: heterogeneity must pay for itself, not merely
tie.  The scenario matrix (structural class x winning backend) is
recorded alongside, Table-II-style.  Everything runs on the virtual
clock, so the committed record in ``benchmarks/BENCH_placement.json``
is byte-deterministic and the band guard pins the headline values.

Regenerate with ``python benchmarks/bench_placement.py`` after an
intentional cost-model change (and say why in the commit).
"""

import json
from pathlib import Path

from repro.experiments.report import ExperimentTable
from repro.fpga import FleetSpec
from repro.serve import LoadSpec, ServiceConfig, run_loadtest

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_placement.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GUARD_RELATIVE_TOLERANCE = 0.10

SOURCES = ("Wi", "Ga", "Ns", "If")
"""Two FPGA-favored + two GPU-favored registry sources."""

SEED = 11
DURATION_S = 3.0
RATES_RPS = (200.0, 400.0)

FLEETS = {
    "fpga_only": FleetSpec(devices=1, slots_per_device=4),
    "gpu_only": FleetSpec(devices=1, slots_per_device=0, gpu_tenants=4),
    "mixed": FleetSpec(devices=1, slots_per_device=2, gpu_tenants=2),
}


def _mode_record(report) -> dict:
    doc = report.as_dict(include_responses=False)
    record = {
        "p50_ms": doc["latency_ms"]["overall"]["p50"],
        "p99_ms": doc["latency_ms"]["overall"]["p99"],
        "completed": doc["requests"]["completed"],
        "unaccounted": doc["requests"]["unaccounted"],
        "batches": doc["batches"]["count"],
        "device_seconds": doc["fleet"]["device_seconds"],
    }
    if "placement" in doc:
        record["by_class"] = doc["placement"]["by_class"]
        record["scenario_matrix"] = doc["placement"]["scenario_matrix"]
    return record


def measure() -> dict:
    by_rate = {}
    for rate in RATES_RPS:
        spec = LoadSpec(
            seed=SEED,
            duration_s=DURATION_S,
            rate_rps=rate,
            mix="uniform",
            sources=SOURCES,
        )
        records = {
            name: _mode_record(run_loadtest(spec, ServiceConfig(fleet=fleet)))
            for name, fleet in FLEETS.items()
        }
        mixed = records["mixed"]
        records["mixed_wins"] = {
            "device_seconds": bool(
                mixed["device_seconds"] < records["fpga_only"]["device_seconds"]
                and mixed["device_seconds"] < records["gpu_only"]["device_seconds"]
            ),
            "p50": bool(
                mixed["p50_ms"] < records["fpga_only"]["p50_ms"]
                and mixed["p50_ms"] < records["gpu_only"]["p50_ms"]
            ),
        }
        by_rate[f"{rate:.0f}rps"] = records
    return {
        "spec": {
            "seed": SEED,
            "duration_s": DURATION_S,
            "mix": "uniform",
            "sources": list(SOURCES),
            "rates_rps": list(RATES_RPS),
        },
        "fleets": {
            name: {
                "fpga_slots": fleet.total_slots,
                "gpu_tenants": fleet.gpu_tenants,
            }
            for name, fleet in FLEETS.items()
        },
        "results": by_rate,
    }


def run() -> tuple[ExperimentTable, dict]:
    report = measure()
    table = ExperimentTable(
        experiment_id="Placement P1",
        title=(
            "Mixed FPGA+GPU fleet vs single-backend fleets "
            f"(seed={SEED}, {DURATION_S:.0f}s, uniform over "
            f"{'/'.join(SOURCES)})"
        ),
        headers=(
            "rate", "fleet", "p50 ms", "p99 ms",
            "device s", "unaccounted",
        ),
    )
    for rate_key, records in report["results"].items():
        for name in FLEETS:
            record = records[name]
            table.add_row(
                rate_key,
                name,
                round(record["p50_ms"], 3),
                round(record["p99_ms"], 3),
                round(record["device_seconds"], 4),
                record["unaccounted"],
            )
    matrix = report["results"]["200rps"]["mixed"]["scenario_matrix"]
    table.add_note(f"scenario matrix (class x winner): {matrix}")
    return table, report


def test_bench_placement(benchmark, print_table):
    table, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    for records in report["results"].values():
        # Accounting invariant holds on every backend.
        for name in FLEETS:
            assert records[name]["unaccounted"] == 0
        # Acceptance: heterogeneity must pay on every probed rate.
        assert records["mixed_wins"]["device_seconds"], (
            "mixed fleet failed to beat both single-backend fleets "
            "on device-seconds"
        )
        assert records["mixed_wins"]["p50"], (
            "mixed fleet failed to beat both single-backend fleets on p50"
        )
        # The decision layer genuinely split the traffic.
        by_class = records["mixed"]["by_class"]
        assert by_class["fpga"] > 0 and by_class["gpu"] > 0
    # Band guard: headline values must not drift.
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    heavy = report["results"]["400rps"]
    measured = {
        "placement_mixed_p50_ms": heavy["mixed"]["p50_ms"],
        "placement_mixed_device_seconds": heavy["mixed"]["device_seconds"],
        "placement_fpga_device_seconds": heavy["fpga_only"]["device_seconds"],
        "placement_gpu_device_seconds": heavy["gpu_only"]["device_seconds"],
    }
    failures = []
    for name, value in measured.items():
        reference = float(bands[name])
        low = (1.0 - GUARD_RELATIVE_TOLERANCE) * reference
        high = (1.0 + GUARD_RELATIVE_TOLERANCE) * reference
        if not low <= value <= high:
            failures.append(
                f"{name}: measured {value:.4f} outside "
                f"[{low:.4f}, {high:.4f}]"
            )
    assert not failures, "; ".join(failures)


def test_committed_record_meets_acceptance():
    """The committed record shows the mixed fleet beating both
    single-backend fleets, with a populated scenario matrix."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    for records in committed["results"].values():
        assert records["mixed_wins"]["device_seconds"] is True
        assert records["mixed_wins"]["p50"] is True
        for name in ("fpga_only", "gpu_only", "mixed"):
            assert records[name]["unaccounted"] == 0
        matrix = records["mixed"]["scenario_matrix"]
        winners = {
            winner
            for row in matrix.values()
            for winner, count in row.items()
            if count > 0
        }
        assert {"fpga", "gpu"} <= winners


def main() -> int:  # pragma: no cover - CLI
    table, report = run()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(table.to_text())
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
