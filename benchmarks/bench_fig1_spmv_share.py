"""Figure 1: SpMV's share of solver compute latency per (dataset, solver)."""

import numpy as np

from repro.experiments import fig1


def test_bench_fig1_spmv_share(benchmark, print_table):
    table = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    print_table(table)
    shares = table.column("spmv_share")
    # SpMV is the dominant kernel across solvers and datasets.
    assert np.mean(shares) > 0.5
    assert np.quantile(shares, 0.1) > 0.3
