"""Extension: per-kernel compute-time breakdown across the whole suite."""

import numpy as np

from repro.experiments import kernel_mix


def test_bench_kernel_mix(benchmark, print_table):
    table = benchmark.pedantic(kernel_mix.run, rounds=1, iterations=1)
    print_table(table)
    for row in table.rows:
        shares = row[2:]
        assert 0.97 < sum(shares) < 1.03, row  # shares partition the time
        assert row[2] > 0.5, row  # SpMV dominates every solver
    # Jacobi spends dense time in scale/vadd, Krylov methods in dot/axpy.
    jacobi_rows = [r for r in table.rows if r[1] == "jacobi"]
    krylov_rows = [r for r in table.rows if r[1] in ("cg", "bicgstab")]
    headers = table.headers
    dot_i, scale_i = headers.index("dot"), headers.index("scale")
    assert all(r[dot_i] == 0 for r in jacobi_rows)
    assert np.mean([r[dot_i] for r in krylov_rows]) > 0.02
    assert all(r[scale_i] > 0 for r in jacobi_rows)
