"""Figure 6: latency speedup of Acamar over the static design per SpMV_URB.

Paper shape: up to 11.61x at URB=1, decaying with baseline resources,
near-constant past URB=16; GMEAN row aggregates across datasets.
"""

from repro.experiments import fig6


def test_bench_fig6_speedup(benchmark, print_table, print_text):
    table = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    print_table(table)
    print_text(table.render_series("ID", "URB=1"))

    gmean = table.rows[-1]
    assert gmean[0] == "GMEAN"
    values = list(gmean[1:])
    assert values[0] > 3.0          # large win vs a 1-MAC baseline
    assert values[0] > values[2]    # decaying
    assert abs(values[-1] - values[-2]) < 0.15  # flat for URB > 32
    per_dataset_max = max(max(row[1:]) for row in table.rows[:-1])
    assert per_dataset_max > 6.0    # paper: up to 11.61x
