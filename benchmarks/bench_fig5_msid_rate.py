"""Figure 5: reconfiguration rate vs MSID chain stages (flat past rOpt=8)."""

from repro.experiments import fig5


def test_bench_fig5_msid_rate(benchmark, print_table):
    table = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    print_table(table)
    mean = table.rows[-1]
    assert mean[0] == "MEAN"
    rates = list(mean[1:])
    # Monotone non-increasing, saturating after rOpt=8.
    assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
    assert rates[-3] - rates[-1] < (rates[0] - rates[-3]) / 2
