"""Figure 2: baseline SpMV resource underutilization vs fixed unroll factor."""

import numpy as np

from repro.experiments import fig2


def test_bench_fig2_baseline_underutilization(benchmark, print_table):
    table = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    print_table(table)
    assert len(table.rows) == 25
    # No single static unroll factor is optimal for every dataset.
    assert len(set(table.column("best URB"))) > 1
    # Oversized static unrolls waste most of the fabric.
    assert np.mean(table.column("URB=64")) > np.mean(table.column("URB=4"))
