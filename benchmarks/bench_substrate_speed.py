"""Microbenchmarks of the Python substrate itself (pytest-benchmark).

These are the only benchmarks that time *this library's* execution speed
(everything else regenerates paper data from cycle models).  They keep
the from-scratch SpMV honest against scipy's C implementation and catch
accidental algorithmic regressions in the hot paths.
"""

import numpy as np
import pytest

from repro.config import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit
from repro.datasets.generators import sdd_matrix
from repro.fpga import ALVEO_U55C, spmv_sweep


@pytest.fixture(scope="module")
def big_matrix():
    return sdd_matrix(4096, 12.0, seed=99)


def test_bench_csr_matvec(benchmark, big_matrix):
    x = np.random.default_rng(0).standard_normal(4096)
    result = benchmark(big_matrix.matvec, x)
    assert result.shape == (4096,)


def test_bench_csr_matvec_vs_scipy(benchmark, big_matrix):
    scipy_sparse = pytest.importorskip("scipy.sparse")
    reference = scipy_sparse.csr_matrix(
        (big_matrix.data, big_matrix.indices, big_matrix.indptr),
        shape=big_matrix.shape,
    )
    x = np.random.default_rng(0).standard_normal(4096)
    ours = big_matrix.matvec(x)
    theirs = benchmark(reference.dot, x)
    np.testing.assert_allclose(ours, theirs, rtol=1e-10)


def test_bench_plan_construction(benchmark, big_matrix):
    unit = FineGrainedReconfigurationUnit(AcamarConfig())
    plan = benchmark(unit.plan, big_matrix)
    assert plan.sets


def test_bench_cycle_model_sweep(benchmark, big_matrix):
    lengths = big_matrix.row_lengths()
    report = benchmark(spmv_sweep, lengths, 8, ALVEO_U55C)
    assert report.cycles > 0


def test_bench_cg_solve(benchmark, big_matrix):
    from repro.solvers import ConjugateGradientSolver

    b = big_matrix.matvec(
        np.random.default_rng(0).standard_normal(4096)
    ).astype(np.float32)

    def solve_once():
        # symmetric? sdd_matrix(symmetric=False) -> use bicgstab-safe jacobi
        from repro.solvers import JacobiSolver

        return JacobiSolver().solve(big_matrix, b)

    result = benchmark.pedantic(solve_once, rounds=3, iterations=1)
    assert result.converged
