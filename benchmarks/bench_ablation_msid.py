"""Ablation: what does the MSID chain actually buy?

Compares rOpt=0 (no optimization) against the paper's rOpt=8 on every
dataset, accounting the *full* per-solve cost: compute latency plus the
ICAP time of every fine-grained reconfiguration event across all solver
sweeps.  The MSID chain's value is exactly the removed events times the
per-event ICAP cost; its risk — distorting utilization or compute
latency — is bounded by Figure 11's findings and re-checked here.
"""

import numpy as np

from repro.config import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit
from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization, plan_event_unrolls


def run(keys=None) -> ExperimentTable:
    model = runner.performance_model()
    table = ExperimentTable(
        experiment_id="Ablation A1",
        title="MSID chain on/off: events, reconfig time, R.U. (per sweep)",
        headers=(
            "ID", "events_off", "events_on", "reconfig_ms_off",
            "reconfig_ms_on", "RU_off", "RU_on",
        ),
    )
    saved = []
    for key in runner.resolve_keys(keys):
        matrix = runner.problem(key).matrix
        lengths = matrix.row_lengths()
        plans = {
            r: FineGrainedReconfigurationUnit(AcamarConfig(r_opt=r)).plan(matrix)
            for r in (0, 8)
        }
        times = {
            r: model.reconfig.plan_overhead_seconds(plan_event_unrolls(p)) * 1e3
            for r, p in plans.items()
        }
        rus = {
            r: mean_underutilization(lengths, p.unroll_for_rows)
            for r, p in plans.items()
        }
        saved.append(times[0] - times[8])
        table.add_row(
            key,
            plans[0].reconfiguration_count,
            plans[8].reconfiguration_count,
            times[0],
            times[8],
            rus[0],
            rus[8],
        )
    table.add_note(
        f"MSID saves {np.mean(saved):.3f} ms of ICAP time per sweep on "
        "average while leaving Eq. 5 utilization within a few points"
    )
    return table


def test_bench_ablation_msid(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    events_off = np.array(table.column("events_off"))
    events_on = np.array(table.column("events_on"))
    assert np.all(events_on <= events_off)
    assert events_on.sum() < events_off.sum()
    ru_shift = np.abs(
        np.array(table.column("RU_on")) - np.array(table.column("RU_off"))
    )
    assert ru_shift.max() < 0.15
