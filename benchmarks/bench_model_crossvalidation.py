"""Cross-validation: pipeline simulator vs analytic model, full suite.

Two independent implementations of the Dynamic SpMV kernel's timing exist
(the analytic slot count and the event-driven pipeline).  This bench runs
both over every Table II stand-in under its Acamar plan and asserts they
agree within the pipeline's drain tail on all 25 — the strongest internal-
consistency check the cost model has.
"""

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import SpMVPipelineSimulator
from repro.fpga.cost_model import operator_row_lengths


def run(keys=None) -> ExperimentTable:
    model = runner.performance_model()
    simulator = SpMVPipelineSimulator(model.device)
    table = ExperimentTable(
        experiment_id="Validation V1",
        title="Pipeline simulator vs analytic cycle model (one sweep)",
        headers=("ID", "pipeline_cycles", "analytic_cycles", "delta",
                 "pipeline_occupancy"),
    )
    for key in runner.resolve_keys(keys):
        problem = runner.problem(key)
        result = runner.acamar_result(key)
        lengths = operator_row_lengths(problem.matrix, result.final.solver)
        pipeline_c, analytic_c = simulator.validate_against_analytic(
            lengths, result.plan
        )
        trace = SpMVPipelineSimulator(
            model.device, include_reconfiguration=False
        ).simulate(lengths, result.plan)
        table.add_row(
            key, pipeline_c, analytic_c, pipeline_c - analytic_c,
            trace.occupancy,
        )
    deltas = [abs(row[3]) for row in table.rows]
    table.add_note(
        f"largest disagreement {max(deltas):.0f} cycles (drain tail); "
        "the two timing models are independent implementations of the "
        "same hardware"
    )
    return table


def test_bench_model_crossvalidation(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    assert len(table.rows) == 25
    for row in table.rows:
        assert abs(row[3]) < 100, row          # within the drain tail
        assert row[1] / row[2] < 1.05          # never more than 5% apart
        assert 0.0 < row[4] <= 1.0
