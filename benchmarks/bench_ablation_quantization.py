"""Ablation: Eq. 7 quantization policy (nearest / ceil / floor).

The Row Length Trace's averages are fractional; how they quantize to an
integer unroll factor trades latency against utilization exactly as the
paper's Section VII-A examples describe: rounding *up* buys parallelism
(fewer initiation slots) at the cost of idle MACs, rounding *down* the
reverse.  This sweep quantifies the trade on every dataset.
"""

import numpy as np

from repro.config import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit
from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization

MODES = ("floor", "nearest", "ceil")


def run(keys=None) -> ExperimentTable:
    model = runner.performance_model()
    table = ExperimentTable(
        experiment_id="Ablation A3",
        title="Unroll quantization policy: sweep cycles and Eq. 5 R.U.",
        headers=(
            "ID",
            *[f"cycles[{m}]" for m in MODES],
            *[f"RU[{m}]" for m in MODES],
        ),
    )
    for key in runner.resolve_keys(keys):
        matrix = runner.problem(key).matrix
        lengths = matrix.row_lengths()
        cycles, rus = [], []
        for mode in MODES:
            plan = FineGrainedReconfigurationUnit(
                AcamarConfig(unroll_rounding=mode)
            ).plan(matrix)
            sweep = model.spmv_unit_sweep(lengths, plan.unroll_for_rows)
            cycles.append(sweep.cycles)
            rus.append(mean_underutilization(lengths, plan.unroll_for_rows))
        table.add_row(key, *cycles, *rus)
    table.add_note(
        "ceil trades utilization for latency, floor the reverse; nearest "
        "(the reproduction default) sits between them"
    )
    return table


def test_bench_ablation_quantization(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    floor_c = np.array(table.column("cycles[floor]"))
    ceil_c = np.array(table.column("cycles[ceil]"))
    near_c = np.array(table.column("cycles[nearest]"))
    # Rounding up provisions at least as many MACs: on aggregate it is
    # the fastest policy (per-dataset exceptions exist because the MSID
    # chain merges different runs under different raw traces).
    assert np.mean(ceil_c) <= np.mean(near_c)
    assert np.mean(near_c) <= np.mean(floor_c)
    assert np.all(ceil_c <= floor_c)
    # And it wastes at least as much fabric on average.
    ru_ceil = np.mean(table.column("RU[ceil]"))
    ru_floor = np.mean(table.column("RU[floor]"))
    assert ru_ceil >= ru_floor - 0.02
