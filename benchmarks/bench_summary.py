"""The reproduction's bottom line: every paper claim, checked at once.

Alongside the paper-claim summary, this module renders the repo's own
*performance trajectory* — the headline ratio of each committed
optimization record (``BENCH_hotpath.json``, ``BENCH_serving.json``,
``BENCH_cluster.json``, ``BENCH_batched.json``, ``BENCH_dse.json``,
``BENCH_placement.json``) in
one table, each checked against the acceptance floor its own benchmark
enforces.  The
table reads committed records only; regenerate a record with its
benchmark's ``main()`` before expecting the row to move.
"""

import json
from pathlib import Path

from repro.experiments.report import ExperimentTable
from repro.experiments.summary import run

BENCH_DIR = Path(__file__).resolve().parent


def _load(name: str) -> dict:
    with open(BENCH_DIR / name) as fh:
        return json.load(fh)


def perf_trajectory() -> ExperimentTable:
    """One row per committed optimization record: ratio vs its floor."""
    hotpath = _load("BENCH_hotpath.json")
    serving = _load("BENCH_serving.json")
    cluster = _load("BENCH_cluster.json")
    batched = _load("BENCH_batched.json")
    dse = _load("BENCH_dse.json")
    placement = _load("BENCH_placement.json")
    table = ExperimentTable(
        experiment_id="PERF",
        title="Performance trajectory (committed BENCH records)",
        headers=("stage", "metric", "ratio", "floor", "holds"),
    )
    rows = (
        (
            "hotpath",
            "bicgstab solve speedup",
            float(hotpath["families"]["bicgstab"]["speedup"]),
            2.0,
        ),
        (
            "serving",
            "warm-cache p50 speedup",
            float(serving["p50_speedup"]),
            2.0,
        ),
        (
            "cluster",
            "slot-seconds saving vs static",
            float(cluster["slot_seconds_saving"]),
            0.5,
        ),
        (
            "batched",
            "host seconds per solve speedup",
            float(batched["host"]["host_per_solve_speedup"]),
            2.0,
        ),
        (
            "dse",
            "frontier best GFLOPS/W",
            float(dse["best_gflops_per_watt"]),
            5.0,
        ),
        (
            "placement",
            "device-seconds saving vs best single backend",
            float(
                min(
                    rec["device_seconds"]
                    for name, rec in
                    placement["results"]["400rps"].items()
                    if name in ("fpga_only", "gpu_only")
                )
                / placement["results"]["400rps"]["mixed"]["device_seconds"]
            ),
            1.0,
        ),
    )
    for stage, metric, ratio, floor in rows:
        table.add_row(stage, metric, ratio, floor, ratio >= floor)
    table.add_note(
        "each floor is the acceptance bound the stage's own benchmark "
        "guards; see bench_hot_path / bench_serving / bench_cluster / "
        "bench_batched / bench_dse / bench_placement"
    )
    return table


def test_bench_summary(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    assert all(table.column("holds")), "a paper claim no longer holds"


def test_perf_trajectory(print_table):
    table = perf_trajectory()
    print_table(table)
    assert all(table.column("holds")), (
        "a committed optimization record fell below its acceptance floor"
    )
