"""The reproduction's bottom line: every paper claim, checked at once."""

from repro.experiments.summary import run


def test_bench_summary(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    assert all(table.column("holds")), "a paper claim no longer holds"
