"""Figure 8: resource underutilization of Acamar vs the GTX 1650 Super."""

from repro.experiments import fig8


def test_bench_fig8_gpu_underutilization(benchmark, print_table):
    table = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    print_table(table)
    mean = table.rows[-1]
    assert mean[0] == "MEAN"
    acamar_mean, gpu_mean = mean[1], mean[2]
    # Paper: 50% vs 81% averages; the ordering and the gap are the claim.
    assert acamar_mean < gpu_mean
    assert gpu_mean - acamar_mean > 0.15
    for row in table.rows[:-1]:
        assert row[1] < row[2], row
