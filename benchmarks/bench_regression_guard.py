"""Golden-band regression guard: the repo's own numbers must not drift.

`bench_summary` checks the paper's (loose) shape claims; this bench pins
the measured headline values within 10% of the recorded reference
(`benchmarks/reference_bands.json`).  An intentional model change should
update the bands via `python -m repro.experiments.regression --update`.
"""

from repro.experiments.regression import check_regression
from repro.experiments.report import ExperimentTable


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="Validation V2",
        title="Golden-band regression check (10% tolerance)",
        headers=("metric", "reference", "measured", "within band"),
    )
    for check in check_regression():
        table.add_row(
            check.name, check.reference, check.measured, check.within_band
        )
    return table


def test_bench_regression_guard(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    drifted = [row for row in table.rows if not row[3]]
    assert not drifted, f"metrics drifted out of band: {drifted}"
