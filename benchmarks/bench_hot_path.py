"""Hot-path throughput benchmark: cached substrate vs the pre-cache seed.

Measures end-to-end solve throughput (solves/sec and iterations/sec) per
solver family on the 256x256 (65,536-row) 2-D Poisson problem, running
each family twice: once on :class:`LegacySubstrateMatrix` — a faithful
re-implementation of the seed's uncached kernels (per-call ``np.repeat``
row ids, ``np.add.at`` scatter rmatvec, re-validating constructors) —
and once on the current cached :class:`~repro.sparse.csr.CSRMatrix`.

Every round builds a fresh matrix, so the "after" numbers include all
one-time plan/cache construction: the speedup reported is for a single
cold solve, not an amortized warm loop.

Run directly to (re)generate the committed machine-readable record::

    PYTHONPATH=src python benchmarks/bench_hot_path.py

which writes ``benchmarks/BENCH_hotpath.json``.  Under pytest the module
acts as the CI hot-path guard: it re-measures the BiCG-STAB and BiCG
speedup ratios and fails if they regress more than 30 % below the
``hotpath_*`` entries pinned in ``benchmarks/reference_bands.json``
(ratios of two runs on the same machine are portable across runners,
unlike absolute solves/sec).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.datasets.pde import poisson_2d
from repro.solvers import (
    BiCGSolver,
    BiCGStabSolver,
    ConjugateGradientSolver,
    JacobiSolver,
)
from repro.sparse.csr import CSRMatrix

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_hotpath.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GRID = 256
ROUNDS = 3
GUARD_RELATIVE_TOLERANCE = 0.30
"""Allowed regression of a pinned hot-path speedup ratio (30 %)."""


class LegacySubstrateMatrix(CSRMatrix):
    """CSR matrix with the seed's (pre-caching) kernel implementations.

    Reproduces the substrate this PR replaced: no structure cache, row
    ids rebuilt with ``np.repeat`` on every call, ``rmatvec`` as an
    ``np.add.at`` scatter, and derived matrices built through the
    validating public constructor.  Used only as the benchmark baseline.
    """

    __slots__ = ()

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_ids(self) -> np.ndarray:
        return np.repeat(np.arange(self.n_rows), self.row_lengths())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        out_dtype = np.result_type(self.data, x)
        products = self.data * x[self.indices]
        result = np.zeros(self.n_rows, dtype=out_dtype)
        nonempty = self.indptr[:-1] != self.indptr[1:]
        if np.any(nonempty):
            starts = self.indptr[:-1][nonempty]
            result[nonempty] = np.add.reduceat(products, starts)
        return result

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        out_dtype = np.result_type(self.data, x)
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        result = np.zeros(self.n_cols, dtype=out_dtype)
        np.add.at(result, self.indices, self.data * x[row_of])
        return result

    def diagonal(self) -> np.ndarray:
        n = min(self.shape)
        diag = np.zeros(n, dtype=self.data.dtype)
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        on_diag = (row_of == self.indices) & (self.indices < n)
        diag[self.indices[on_diag]] = self.data[on_diag]
        return diag

    def without_diagonal(self) -> "LegacySubstrateMatrix":
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        keep = row_of != self.indices
        new_counts = np.bincount(row_of[keep], minlength=self.n_rows)
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        return LegacySubstrateMatrix(
            self.shape, indptr, self.indices[keep], self.data[keep]
        )

    def transpose(self) -> "LegacySubstrateMatrix":
        n_rows, n_cols = self.shape
        counts = np.bincount(self.indices, minlength=n_cols)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        row_of = np.repeat(np.arange(n_rows), self.row_lengths())
        order = np.argsort(self.indices, kind="stable")
        return LegacySubstrateMatrix(
            (n_cols, n_rows), indptr, row_of[order], self.data[order]
        )

    def astype(self, dtype: np.dtype | type) -> "LegacySubstrateMatrix":
        return LegacySubstrateMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(),
            self.data.astype(dtype),
        )

    def with_data(self, data: np.ndarray) -> "LegacySubstrateMatrix":
        # The seed's Jacobi built T through the validating constructor.
        return LegacySubstrateMatrix(
            self.shape, self.indptr, self.indices, np.asarray(data)
        )


FAMILIES: tuple[tuple[str, type, int | None], ...] = (
    # (family, solver class, iteration cap — None means to convergence)
    ("bicgstab", BiCGStabSolver, None),
    ("cg", ConjugateGradientSolver, 60),
    ("jacobi", JacobiSolver, 60),
    ("bicg", BiCGSolver, 30),
)


def _solver(cls: type, cap: int | None):
    if cap is None:
        return cls()
    return cls(max_iterations=cap)


def _time_family(
    matrix_cls: type, solver, problem, rounds: int = ROUNDS
) -> dict[str, float]:
    """Best-of-``rounds`` wall time; each round gets a cold matrix."""
    matrices = [
        matrix_cls(
            problem.matrix.shape,
            problem.matrix.indptr.copy(),
            problem.matrix.indices.copy(),
            problem.matrix.data.copy(),
        )
        for _ in range(rounds)
    ]
    best = np.inf
    result = None
    for matrix in matrices:
        start = time.perf_counter()
        result = solver.solve(matrix, problem.b)
        best = min(best, time.perf_counter() - start)
    iterations = int(result.iterations)
    return {
        "wall_s": round(best, 6),
        "iterations": iterations,
        "converged": bool(result.converged),
        "solves_per_sec": round(1.0 / best, 4),
        "iters_per_sec": round(iterations / best, 2) if iterations else 0.0,
    }


def measure(rounds: int = ROUNDS) -> dict:
    """Run every family on both substrates and package the comparison."""
    problem = poisson_2d(GRID)
    families: dict[str, dict] = {}
    for name, cls, cap in FAMILIES:
        before = _time_family(
            LegacySubstrateMatrix, _solver(cls, cap), problem, rounds
        )
        after = _time_family(CSRMatrix, _solver(cls, cap), problem, rounds)
        families[name] = {
            "before": before,
            "after": after,
            "speedup": round(before["wall_s"] / after["wall_s"], 4),
        }
    return {
        "schema_version": 1,
        "problem": {
            "name": f"poisson_2d({GRID})",
            "n_rows": int(problem.matrix.n_rows),
            "nnz": int(problem.matrix.nnz),
        },
        "rounds": rounds,
        "families": families,
    }


def guarded_speedups(report: dict) -> dict[str, float]:
    """The speedup ratios pinned by ``reference_bands.json``."""
    return {
        f"hotpath_{name}_speedup": report["families"][name]["speedup"]
        for name in ("bicgstab", "bicg")
    }


# ----------------------------------------------------------------------
# CI guard (pytest entry points)
# ----------------------------------------------------------------------


def test_hot_path_speedup_guard():
    """Measured substrate speedups may not regress >30% below the bands."""
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    report = measure()
    measured = guarded_speedups(report)
    failures = []
    for name, reference in sorted(bands.items()):
        if not name.startswith("hotpath_"):
            continue
        value = measured[name]
        floor = (1.0 - GUARD_RELATIVE_TOLERANCE) * float(reference)
        if value < floor:
            failures.append(f"{name}: measured {value:.3f} < floor {floor:.3f}")
    assert not failures, "; ".join(failures)


def test_bicgstab_meets_acceptance_speedup():
    """The committed record shows the >=2x BiCG-STAB acceptance result."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    assert committed["families"]["bicgstab"]["speedup"] >= 2.0


def main() -> int:  # pragma: no cover - CLI
    report = measure()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, entry in report["families"].items():
        print(
            f"{name:9s} before {entry['before']['wall_s']:.4f}s "
            f"after {entry['after']['wall_s']:.4f}s "
            f"speedup {entry['speedup']:.2f}x"
        )
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
