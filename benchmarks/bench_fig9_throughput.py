"""Figure 9: achieved compute throughput as a fraction of peak."""

from repro.experiments import fig9


def test_bench_fig9_throughput(benchmark, print_table):
    table = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    print_table(table)
    mean = table.rows[-1]
    acamar_mean, gpu_mean = mean[1], mean[3]
    assert 0.55 < acamar_mean < 0.95   # paper: ~70% average
    assert max(row[1] for row in table.rows[:-1]) > 0.70  # paper: up to 83%
    assert gpu_mean < 0.02             # GPU: a few percent at most
