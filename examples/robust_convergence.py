#!/usr/bin/env python3
"""Robust convergence: the Solver Decision loop rescuing a divergent solve.

The paper's Table II shows that no single iterative solver converges on
every coefficient matrix.  This example reproduces the failure live on
three Table II stand-ins with different structural classes, then shows the
Solver Modifier unit recovering:

- ``Fe`` (fe_rotor class):   only Jacobi converges,
- ``Bc`` (bcircuit class):   only CG converges,
- ``If`` (ifiss_mat class):  only BiCG-STAB converges.

Run:  python examples/robust_convergence.py
"""

from repro import Acamar
from repro.baselines import run_solver_portfolio
from repro.datasets import dataset_spec, load_problem


def main() -> None:
    acamar = Acamar()
    for key in ("Fe", "Bc", "If"):
        spec = dataset_spec(key)
        problem = load_problem(key)
        print(f"=== {spec.name} ({spec.structure}) ===")

        # A static accelerator is built around ONE solver; show each.
        for name, result in run_solver_portfolio(problem.matrix, problem.b).items():
            verdict = (
                "converged"
                if result.converged
                else f"FAILED ({result.status.value})"
            )
            print(
                f"  static {name:10s}: {verdict:28s} "
                f"after {result.iterations} iterations"
            )

        # Acamar: structure-driven selection + runtime solver switching.
        result = acamar.solve(problem.matrix, problem.b)
        print(f"  acamar selection : {result.selection.solver!r} "
              f"({result.selection.reason})")
        print(f"  acamar sequence  : {' -> '.join(result.solver_sequence)}")
        print(f"  acamar outcome   : converged={result.converged} "
              f"residual={result.final.final_residual:.2e} "
              f"solver swaps={result.solver_reconfigurations}")
        print(f"  forward error    : {problem.relative_error(result.x):.2e}")
        print()


if __name__ == "__main__":
    main()
