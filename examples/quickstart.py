#!/usr/bin/env python3
"""Quickstart: solve one PDE system with Acamar and inspect the decisions.

Discretizes a 2-D Poisson problem (heat conduction on a square plate),
hands the CSR matrix to the Acamar accelerator, and prints everything the
hardware would have decided along the way: the Matrix Structure unit's
solver selection, the Fine-Grained Reconfiguration unit's unroll schedule,
the MSID chain's savings, and the modeled FPGA latency versus a static
baseline design.

Run:  python examples/quickstart.py
"""

from repro import Acamar, AcamarConfig
from repro.baselines import StaticDesign
from repro.datasets import poisson_2d
from repro.fpga import PerformanceModel, mean_underutilization
from repro.metrics import latency_speedup


def main() -> None:
    # 1. A scientific-computing problem in Ax = b form.
    problem = poisson_2d(48)  # 48x48 interior grid -> n = 2304
    print(f"problem: {problem.name}  n={problem.n}  nnz={problem.nnz}")

    # 2. Solve it with the dynamically reconfigurable accelerator.
    acamar = Acamar(AcamarConfig())
    result = acamar.solve(problem.matrix, problem.b)

    selection = result.selection
    print(f"\nMatrix Structure unit: selected {selection.solver!r}")
    print(f"  reason: {selection.reason}")
    print(f"  symmetric={selection.properties.symmetric} "
          f"diag_dominant={selection.properties.strictly_diagonally_dominant}")

    print(f"\nsolver sequence: {' -> '.join(result.solver_sequence)}")
    print(f"converged: {result.converged} in {result.final.iterations} iterations")
    print(f"final relative residual: {result.final.final_residual:.2e}")
    print(f"forward error vs known solution: {problem.relative_error(result.x):.2e}")

    # 3. The Resource Decision loop's plan.
    plan = result.plan
    print(f"\nreconfiguration plan: {len(plan.sets)} row sets")
    print(f"  raw unroll trace:   {plan.raw_unrolls.tolist()[:16]} ...")
    print(f"  post-MSID trace:    {plan.final_unrolls.tolist()[:16]} ...")
    print(f"  reconfig events: {plan.msid.initial_events} -> "
          f"{plan.msid.final_events} (MSID removed {plan.msid.events_removed})")

    # 4. Modeled FPGA performance vs a static design (same solver, URB=8).
    model = PerformanceModel()
    acamar_latency = model.acamar_latency(problem.matrix, result)
    static = StaticDesign(result.final.solver, spmv_urb=8)
    static_latency = model.solver_latency(problem.matrix, result.final, urb=8)
    speedup = latency_speedup(
        static_latency.compute_seconds, acamar_latency.compute_seconds
    )
    lengths = problem.matrix.row_lengths()
    acamar_ms = acamar_latency.compute_seconds * 1e3
    static_ms = static_latency.compute_seconds * 1e3
    print(f"\nmodeled compute latency: acamar={acamar_ms:.3f} ms"
          f"  static(URB={static.spmv_urb})={static_ms:.3f} ms"
          f"  speedup={speedup:.2f}x")
    print(f"SpMV underutilization (Eq. 5): "
          f"acamar={mean_underutilization(lengths, plan.unroll_for_rows):.1%}  "
          f"static={mean_underutilization(lengths, 8):.1%}")


if __name__ == "__main__":
    main()
