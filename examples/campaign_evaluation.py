#!/usr/bin/env python3
"""Campaign evaluation: Acamar over a whole workload population.

A deployment decision is made on a *population* of systems, not a single
matrix.  This example assembles a mixed campaign — a slice of the
Table II stand-ins plus freshly generated PDE and graph systems — runs
Acamar over all of it, and prints the aggregate report a platform team
would look at: convergence rate, which solver ends up doing the work,
and the utilization/latency statistics.

Run:  python examples/campaign_evaluation.py
"""

from repro.campaign import run_campaign
from repro.datasets import (
    convection_diffusion_2d,
    grounded_laplacian_system,
    poisson_2d,
)


def main() -> None:
    sources = [
        # Table II stand-ins covering every structural class:
        "Wa", "2C", "Wi", "If", "Fe", "Bc",
        # plus live-generated Section II-A workloads:
        poisson_2d(40),
        convection_diffusion_2d(32, peclet=10.0),
        grounded_laplacian_system(1200, seed=4),
    ]
    report = run_campaign(sources)

    print(f"{'system':28s} {'n':>6s} {'solver path':>20s} "
          f"{'iters':>6s} {'compute':>10s} {'RU':>6s}")
    for entry in report.entries:
        print(f"{entry.name:28s} {entry.n:>6d} "
              f"{'->'.join(entry.solver_sequence):>20s} "
              f"{entry.iterations:>6d} {entry.compute_ms:>8.3f}ms "
              f"{entry.underutilization:>6.1%}")
    print()
    for line in report.summary_lines():
        print(line)


if __name__ == "__main__":
    main()
