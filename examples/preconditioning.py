#!/usr/bin/env python3
"""Preconditioning study: how far beyond the paper's solvers can you go?

The paper's hardware ships plain CG; its Table I lists preconditioned CG
in the wider design space.  This example runs PCG with every available
preconditioner on two systems — a PDE mesh (where ILU(0) shines) and a
badly row-scaled SPD matrix (where even the one-multiply Jacobi diagonal
is transformative) — and reports iterations, SpMV passes, and the
preconditioner's per-apply cost.

Run:  python examples/preconditioning.py
"""

import numpy as np

from repro.datasets import poisson_2d
from repro.datasets.generators import spd_clique_matrix
from repro.datasets.problem import manufacture_problem
from repro.solvers import PreconditionedCGSolver
from repro.solvers.preconditioners import PRECONDITIONER_REGISTRY, make_preconditioner
from repro.sparse import COOMatrix


def rescaled_spd_problem(n=1024, spread=1.5, seed=5):
    """SPD cliques with lognormal row/column scales: kappa blows up."""
    base = spd_clique_matrix(n, 6.0, seed=seed)
    rng = np.random.default_rng(seed + 1)
    scale = np.exp(rng.normal(0.0, spread, n))
    coo = base.to_coo()
    matrix = COOMatrix(
        base.shape, coo.rows, coo.cols,
        coo.data * scale[coo.rows] * scale[coo.cols],
    ).to_csr()
    return manufacture_problem(f"rescaled_spd_{n}", matrix, seed=seed)


def study(problem) -> None:
    print(f"=== {problem.name}  (n={problem.n}, nnz={problem.nnz}) ===")
    print(f"{'preconditioner':16s} {'status':14s} {'iters':>6s} "
          f"{'apply cost':>11s} {'fwd error':>10s}")
    for name in PRECONDITIONER_REGISTRY:
        solver = PreconditionedCGSolver(preconditioner=name, max_iterations=3000)
        result = solver.solve(problem.matrix, problem.b)
        cost = make_preconditioner(name, problem.matrix).apply_cost_elements()
        error = (
            f"{problem.relative_error(result.x):.1e}" if result.converged else "-"
        )
        print(f"{name:16s} {result.status.value:14s} {result.iterations:>6d} "
              f"{cost:>11d} {error:>10s}")
    print()


def main() -> None:
    study(poisson_2d(40))
    study(rescaled_spd_problem())
    print("takeaway: a one-multiply diagonal preconditioner fixes row")
    print("scaling for free; ILU(0) buys another ~3x on mesh problems at")
    print("two extra triangular sweeps per iteration.")


if __name__ == "__main__":
    main()
