#!/usr/bin/env python3
"""Design-space exploration of the Resource Decision loop.

Sweeps Acamar's two reconfiguration knobs on one irregular matrix and
prints how they trade utilization against reconfiguration cost — the
Section VII exploration in miniature:

- ``SamplingRate`` (sets per chunk): finer sets track the row-length
  profile better (lower Eq. 5 underutilization) but create more
  reconfiguration events;
- ``rOpt`` (MSID stages): more stages remove reconfiguration events while
  leaving utilization and SpMV latency almost unchanged.

Run:  python examples/reconfiguration_tuning.py
"""

from repro import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit, plan_reconfiguration_rate
from repro.datasets import load_problem
from repro.fpga import PerformanceModel, mean_underutilization


def main() -> None:
    problem = load_problem("Cr")  # crystm03 stand-in: wide clique-size spread
    matrix = problem.matrix
    lengths = matrix.row_lengths()
    model = PerformanceModel()
    print(f"matrix: {problem.name}  n={problem.n}  nnz={problem.nnz}  "
          f"rows span {lengths.min()}..{lengths.max()} nnz")

    print("\n-- sampling-rate sweep (rOpt=8, tolerance=0.15) --")
    print(f"{'S':>5} {'RU':>8} {'events/sweep':>13} {'spmv cycles':>12}")
    for sampling in (4, 8, 16, 32, 64, 128, 256):
        plan = FineGrainedReconfigurationUnit(
            AcamarConfig(sampling_rate=sampling)
        ).plan(matrix)
        ru = mean_underutilization(lengths, plan.unroll_for_rows)
        sweep = model.spmv_unit_sweep(lengths, plan.unroll_for_rows)
        print(f"{sampling:>5} {ru:>8.3f} {plan.reconfiguration_count:>13} "
              f"{sweep.cycles:>12.0f}")

    print("\n-- MSID-stage sweep (SamplingRate=64) --")
    print(f"{'rOpt':>5} {'rate':>7} {'RU':>8} {'spmv cycles':>12}")
    for r_opt in (0, 1, 2, 4, 8, 12):
        plan = FineGrainedReconfigurationUnit(
            AcamarConfig(sampling_rate=64, r_opt=r_opt)
        ).plan(matrix)
        ru = mean_underutilization(lengths, plan.unroll_for_rows)
        sweep = model.spmv_unit_sweep(lengths, plan.unroll_for_rows)
        print(f"{r_opt:>5} {plan_reconfiguration_rate(plan):>7.3f} "
              f"{ru:>8.3f} {sweep.cycles:>12.0f}")

    print("\n-- automated recommendation (Pareto + reconfiguration budget) --")
    from repro.core.design_space import recommend

    for budget_us in (50.0, 2000.0):
        point = recommend(matrix, reconfig_budget_seconds=budget_us * 1e-6)
        print(f"budget {budget_us:>7.0f} us -> S={point.sampling_rate} "
              f"rOpt={point.r_opt} tol={point.msid_tolerance} "
              f"({point.spmv_cycles:.0f} cycles, "
              f"{point.reconfig_seconds * 1e6:.0f} us reconfig)")

    print("\ntakeaway: sampling rate buys utilization at the cost of events;")
    print("the MSID chain claws the events back nearly for free.")


if __name__ == "__main__":
    main()
