#!/usr/bin/env python3
"""Workload gallery: all three problem streams from the paper's Section II-A.

Builds one representative ``Ax = b`` system from each stream the paper
motivates — PDE discretization, optimization, graph theory — runs Acamar
on each, and summarizes what the accelerator decided and achieved.

Run:  python examples/workload_gallery.py
"""

from repro import Acamar
from repro.datasets import (
    convection_diffusion_2d,
    grounded_laplacian_system,
    normal_equations_system,
    poisson_3d,
)
from repro.fpga import PerformanceModel
from repro.metrics import achieved_throughput_fraction


def main() -> None:
    acamar = Acamar()
    model = PerformanceModel()
    workloads = [
        ("PDE / heat conduction (3-D Poisson)", poisson_3d(12)),
        ("PDE / transport (convection-diffusion, Pe=10)",
         convection_diffusion_2d(40, peclet=10.0)),
        ("optimization / ridge regression normal equations",
         normal_equations_system(n_samples=3000, n_features=800)),
        ("graph / circuit node voltages (grounded Laplacian)",
         grounded_laplacian_system(1500, avg_degree=6.0)),
    ]
    for label, problem in workloads:
        result = acamar.solve(problem.matrix, problem.b)
        latency = model.acamar_latency(problem.matrix, result)
        throughput = achieved_throughput_fraction(
            latency.final.spmv_report, latency.final.loop_sweeps, model.device
        )
        print(f"=== {label} ===")
        print(f"  n={problem.n}  nnz={problem.nnz}  "
              f"avg nnz/row={problem.nnz / problem.n:.1f}")
        print(f"  selected={result.selection.solver!r}  "
              f"sequence={' -> '.join(result.solver_sequence)}")
        print(f"  converged={result.converged} in {result.final.iterations} "
              f"iterations, residual={result.final.final_residual:.2e}")
        if problem.x_true is not None:
            print(f"  forward error={problem.relative_error(result.x):.2e}")
        print(f"  modeled latency={latency.compute_seconds * 1e3:.3f} ms, "
              f"SpMV throughput={throughput:.0%} of provisioned peak")
        print(f"  spmv reconfigs/sweep={result.spmv_reconfigurations}  "
              f"(MSID removed {result.plan.msid.events_removed})")
        print()


if __name__ == "__main__":
    main()
