#!/usr/bin/env python3
"""External-matrix workflow: .mtx in, reorder, solve, diagnose, report.

The path a user with their own matrices follows: load a Matrix Market
file, try RCM reordering (it always shrinks the bandwidth, and often —
though not always, as this run shows — improves the Row Length Trace's
per-set statistics), solve with Acamar, and inspect the counters.
(The .mtx file is generated locally here so the example runs offline; a
SuiteSparse download drops in unchanged.)

Run:  python examples/matrix_market_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Acamar
from repro.analysis import render_residual_history
from repro.datasets.generators import sdd_matrix
from repro.fpga import collect_counters, mean_underutilization
from repro.sparse import (
    bandwidth,
    permute_symmetric,
    permute_vector,
    rcm_reorder,
    read_matrix_market,
    unpermute_vector,
    write_matrix_market,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_mtx_"))
    mtx_path = workdir / "external_system.mtx"

    # Stand in for a downloaded file: a matrix whose rows were scrambled
    # (as unordered exports often are), killing row-length locality.
    rng = np.random.default_rng(7)
    original = sdd_matrix(1500, 8.0, seed=123, symmetric=True)
    shuffle = rng.permutation(original.n_rows)
    scrambled = permute_symmetric(original, shuffle)
    write_matrix_market(scrambled, mtx_path, comments=["example export"])
    print(f"wrote {mtx_path} ({scrambled.nnz} nnz)")

    # 1. Load.
    matrix = read_matrix_market(mtx_path)
    print(f"loaded: n={matrix.n_rows}, nnz={matrix.nnz}, "
          f"bandwidth={bandwidth(matrix)}")

    # 2. Reorder: RCM shrinks the bandwidth; compare plan quality.
    reordered, perm = rcm_reorder(matrix)
    print(f"after RCM: bandwidth={bandwidth(reordered)}")
    acamar = Acamar()
    for label, m in (("scrambled", matrix), ("RCM-reordered", reordered)):
        plan = acamar.plan(m)
        ru = mean_underutilization(m.row_lengths(), plan.unroll_for_rows)
        print(f"  {label:14s}: Eq.5 R.U. {ru:.1%}, "
              f"{plan.reconfiguration_count} reconfigs/sweep")

    # 3. Solve the reordered system (b must be permuted to match).
    x_true = rng.standard_normal(matrix.n_rows)
    b = matrix.matvec(x_true).astype(np.float32)
    b_reordered = permute_vector(b, perm).astype(np.float32)
    result = acamar.solve(reordered, b_reordered)
    x = unpermute_vector(result.x, perm)
    error = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(f"\nsolved via {'->'.join(result.solver_sequence)}: "
          f"converged={result.converged}, forward error={error:.2e}")

    # 4. Inspect.
    print("\nresidual trajectory:")
    print(render_residual_history(result.final, width=48, height=6))
    print("\ncounters:")
    for line in collect_counters(reordered, result).to_lines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
