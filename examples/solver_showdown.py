#!/usr/bin/env python3
"""Solver showdown: all nine iterative methods on the same systems.

Runs the full solver registry — the paper's three hardware configurations
plus the six Table I extensions — on two contrasting systems (an SPD
Poisson matrix and a non-symmetric convection-diffusion matrix) and
tabulates status, iterations, SpMV passes, and modeled FPGA latency.
The point the table makes is the paper's Section III argument: there is
no single best solver, and the wrong one does not merely run slower — it
fails.

Run:  python examples/solver_showdown.py
"""

from repro.datasets import convection_diffusion_2d, poisson_2d
from repro.fpga import PerformanceModel
from repro.solvers import SOLVER_REGISTRY, make_solver


def showdown(problem) -> None:
    model = PerformanceModel()
    print(f"=== {problem.name}  (n={problem.n}, nnz={problem.nnz}) ===")
    print(f"{'solver':20s} {'status':16s} {'iters':>6s} {'spmv':>6s} "
          f"{'latency_ms':>11s} {'fwd_error':>10s}")
    for name in SOLVER_REGISTRY:
        solver = make_solver(name, max_iterations=3000)
        result = solver.solve(problem.matrix, problem.b)
        latency = model.solver_latency(problem.matrix, result, urb=8)
        error = (
            f"{problem.relative_error(result.x):.1e}"
            if result.converged
            else "-"
        )
        print(f"{name:20s} {result.status.value:16s} "
              f"{result.iterations:>6d} {result.ops.spmv_count():>6d} "
              f"{latency.compute_seconds * 1e3:>11.3f} {error:>10s}")
    print()


def main() -> None:
    showdown(poisson_2d(32))                       # SPD: everything works,
    showdown(convection_diffusion_2d(28, 12.0))    # non-symmetric: CG-family dies
    print("takeaway: the failure column is why Acamar's Matrix Structure")
    print("unit and Solver Modifier exist — not merely for speed.")


if __name__ == "__main__":
    main()
