"""Tests for the PDE discretization workloads."""

import numpy as np
import pytest

from repro.datasets.pde import (
    convection_diffusion_2d,
    convection_diffusion_2d_matrix,
    poisson_2d,
    poisson_2d_matrix,
    poisson_3d,
    poisson_3d_matrix,
)
from repro.errors import ConfigurationError
from repro.sparse.properties import is_symmetric, positive_definite_probe


class TestPoisson2D:
    def test_five_point_stencil_counts(self):
        matrix = poisson_2d_matrix(4, 4)
        assert matrix.shape == (16, 16)
        # nnz = diagonal + 2 per interior edge: 16 + 2*(12 + 12)
        assert matrix.nnz == 16 + 2 * 24

    def test_known_small_case(self):
        matrix = poisson_2d_matrix(2, 2)
        expected = np.array(
            [
                [4.0, -1.0, -1.0, 0.0],
                [-1.0, 4.0, 0.0, -1.0],
                [-1.0, 0.0, 4.0, -1.0],
                [0.0, -1.0, -1.0, 4.0],
            ]
        )
        np.testing.assert_array_equal(matrix.to_dense(), expected)

    def test_spd(self):
        matrix = poisson_2d_matrix(8)
        assert is_symmetric(matrix)
        assert positive_definite_probe(matrix)

    def test_rectangular_grid(self):
        matrix = poisson_2d_matrix(3, 5)
        assert matrix.shape == (15, 15)

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            poisson_2d_matrix(0)

    def test_problem_wrapper_solvable(self):
        problem = poisson_2d(10)
        from repro.solvers import ConjugateGradientSolver

        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        assert result.converged
        assert problem.relative_error(result.x) < 1e-2


class TestPoisson3D:
    def test_seven_point_stencil(self):
        matrix = poisson_3d_matrix(3)
        assert matrix.shape == (27, 27)
        center = matrix.to_dense()[13]  # middle voxel
        assert center[13] == 6.0
        assert (center == -1.0).sum() == 6

    def test_spd(self):
        matrix = poisson_3d_matrix(4)
        assert is_symmetric(matrix)
        assert positive_definite_probe(matrix)

    def test_anisotropic_dimensions(self):
        matrix = poisson_3d_matrix(2, 3, 4)
        assert matrix.shape == (24, 24)

    def test_problem_wrapper(self):
        problem = poisson_3d(6)
        assert problem.n == 216
        assert problem.metadata["grid"] == (6, 6, 6)


class TestConvectionDiffusion:
    def test_nonsymmetric_for_positive_peclet(self):
        matrix = convection_diffusion_2d_matrix(6, peclet=5.0)
        assert not is_symmetric(matrix)

    def test_zero_peclet_reduces_to_poisson(self):
        cd = convection_diffusion_2d_matrix(5, peclet=0.0)
        poisson = poisson_2d_matrix(5)
        np.testing.assert_array_equal(cd.to_dense(), poisson.to_dense())

    def test_row_sums_conserve_upwind_flux(self):
        matrix = convection_diffusion_2d_matrix(4, peclet=3.0)
        dense = matrix.to_dense()
        # interior row: 4 + p - (1+p) - 1 - 1 - 1 = 0
        interior = 1 * 4 + 1  # row index of an interior cell on a 4x4 grid
        assert dense[interior].sum() == pytest.approx(0.0)

    def test_negative_peclet_rejected(self):
        with pytest.raises(ConfigurationError):
            convection_diffusion_2d_matrix(4, peclet=-1.0)

    def test_acamar_routes_to_bicgstab(self):
        from repro import Acamar

        problem = convection_diffusion_2d(20, peclet=10.0)
        result = Acamar().solve(problem.matrix, problem.b)
        assert result.converged
        assert result.selection.solver in ("bicgstab", "jacobi")
