"""Tests for the Table II dataset registry — including the full ✓/✗ sweep."""

import numpy as np
import pytest

from repro.baselines import run_solver_portfolio
from repro.datasets import (
    dataset_keys,
    dataset_spec,
    load_extra,
    load_matrix,
    load_problem,
)
from repro.errors import DatasetError
from repro.sparse.properties import (
    is_strictly_diagonally_dominant,
    is_symmetric,
)

STRUCTURE_CHECK_KEYS = dataset_keys()


class TestRegistry:
    def test_has_all_25_paper_rows(self):
        assert len(dataset_keys()) == 25

    def test_keys_match_paper_order_prefix(self):
        assert dataset_keys()[:5] == ("2C", "Of", "Wi", "If", "Wa")

    def test_unknown_key_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            dataset_spec("ZZ")
        with pytest.raises(DatasetError):
            load_extra("nope")

    def test_spec_fields_populated(self):
        for key in dataset_keys():
            spec = dataset_spec(key)
            assert spec.name and spec.paper_dim and spec.structure
            assert set(spec.expected) == {"jacobi", "cg", "bicgstab"}

    def test_matrix_caching(self):
        assert load_matrix("2C") is load_matrix("2C")

    def test_problem_has_manufactured_solution(self):
        problem = load_problem("Wa")
        recomputed = problem.matrix.matvec(problem.x_true)
        np.testing.assert_allclose(
            recomputed.astype(np.float32), problem.b, rtol=1e-4
        )

    def test_problem_metadata_carries_paper_row(self):
        problem = load_problem("2C")
        assert problem.metadata["paper_dim"] == "101K"
        assert problem.metadata["key"] == "2C"

    def test_extra_dataset_loads(self):
        problem = load_extra()
        assert problem.n == 1024


class TestStructuralClasses:
    @pytest.mark.parametrize("key", STRUCTURE_CHECK_KEYS)
    def test_structure_matches_spec_description(self, key):
        spec = dataset_spec(key)
        matrix = load_matrix(key)
        description = spec.structure.lower()
        if (
            "strictly diagonally dominant" in description
            or "sdd" in description.lower()
        ):
            assert is_strictly_diagonally_dominant(matrix), key
        if "symmetric indefinite" in description or description.startswith("spd"):
            assert is_symmetric(matrix), key
        if "non-symmetric" in description or "skew" in description:
            assert not is_symmetric(matrix), key

    def test_dimension_matches_spec(self):
        for key in dataset_keys():
            spec = dataset_spec(key)
            assert load_matrix(key).shape == (spec.n, spec.n)


class TestTable2Patterns:
    """The headline reproduction: every ✓/✗ must match the paper."""

    @pytest.mark.parametrize("key", dataset_keys())
    def test_pattern_matches_paper(self, key):
        spec = dataset_spec(key)
        problem = load_problem(key)
        results = run_solver_portfolio(problem.matrix, problem.b)
        observed = {name: result.converged for name, result in results.items()}
        assert observed == spec.expected, (
            f"{key}: observed {observed}, paper says {spec.expected}"
        )

    @pytest.mark.parametrize("key", ("Fe", "Bc", "If", "Ct"))
    def test_acamar_rescues_partial_failure_rows(self, key):
        """Rows where at least one solver fails: Acamar still converges."""
        from repro import Acamar

        problem = load_problem(key)
        result = Acamar().solve(problem.matrix, problem.b)
        assert result.converged, key
