"""Tests for the Problem container."""

import numpy as np
import pytest

from repro.datasets.problem import Problem, manufacture_problem


@pytest.fixture
def problem(small_csr):
    return manufacture_problem("unit", small_csr, seed=9)


class TestProblem:
    def test_manufactured_rhs_consistent(self, problem, small_csr):
        np.testing.assert_allclose(
            small_csr.matvec(problem.x_true).astype(np.float32),
            problem.b,
            rtol=1e-6,
        )

    def test_relative_error_zero_at_solution(self, problem):
        assert problem.relative_error(problem.x_true) == 0.0

    def test_relative_error_without_truth_raises(self, small_csr):
        bare = Problem("bare", small_csr, np.ones(4, dtype=np.float32))
        with pytest.raises(ValueError, match="x_true"):
            bare.relative_error(np.ones(4))

    def test_residual_norm_zero_at_solution(self, problem):
        assert problem.residual_norm(problem.x_true) < 1e-6

    def test_residual_norm_of_zero_vector_is_one(self, problem):
        assert problem.residual_norm(np.zeros(problem.n)) == pytest.approx(1.0)

    def test_shape_properties(self, problem):
        assert problem.n == 4
        assert problem.nnz == 10

    def test_metadata_defaults_to_empty_dict(self, small_csr):
        bare = Problem("bare", small_csr, np.ones(4, dtype=np.float32))
        assert bare.metadata == {}

    def test_dtype_control(self, small_csr):
        problem = manufacture_problem("f64", small_csr, dtype=np.float64)
        assert problem.b.dtype == np.float64

    def test_relative_error_with_zero_truth(self, small_csr):
        problem = Problem(
            "zero", small_csr, np.zeros(4, dtype=np.float32),
            x_true=np.zeros(4),
        )
        assert problem.relative_error(np.ones(4)) == pytest.approx(2.0)
