"""Tests for the structural-class matrix generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    balanced_indefinite_matrix,
    ill_conditioned_spd_matrix,
    sample_row_lengths,
    sdd_indefinite_matrix,
    sdd_matrix,
    spd_clique_matrix,
    spd_clique_skew_matrix,
)
from repro.errors import ConfigurationError
from repro.sparse.properties import (
    is_strictly_diagonally_dominant,
    is_symmetric,
    jacobi_iteration_spectral_radius,
    positive_definite_probe,
)


class TestRowLengthSampler:
    def test_mean_roughly_respected(self):
        rng = np.random.default_rng(0)
        lengths = sample_row_lengths(5000, 8.0, rng, correlation=0.0)
        assert lengths.mean() == pytest.approx(8.0, rel=0.15)

    def test_bounds_respected(self):
        rng = np.random.default_rng(0)
        lengths = sample_row_lengths(1000, 5.0, rng, min_nnz=2, max_nnz=10)
        assert lengths.min() >= 2
        assert lengths.max() <= 10

    def test_correlation_produces_smooth_profile(self):
        rng = np.random.default_rng(0)
        correlated = sample_row_lengths(4000, 8.0, rng, correlation=0.98)
        rng = np.random.default_rng(0)
        iid = sample_row_lengths(4000, 8.0, rng, correlation=0.0)

        def lag1_autocorr(x):
            x = x - x.mean()
            return float((x[:-1] * x[1:]).sum() / (x * x).sum())

        assert lag1_autocorr(correlated) > 0.7
        assert abs(lag1_autocorr(iid)) < 0.2

    def test_invalid_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            sample_row_lengths(10, 0.5, rng, min_nnz=1)
        with pytest.raises(ConfigurationError):
            sample_row_lengths(10, 5.0, rng, correlation=1.0)


class TestSDD:
    def test_is_strictly_dominant(self):
        matrix = sdd_matrix(256, 6.0, seed=1)
        assert is_strictly_diagonally_dominant(matrix)

    def test_symmetric_variant_is_spd(self):
        matrix = sdd_matrix(256, 6.0, seed=2, symmetric=True)
        assert is_symmetric(matrix)
        assert positive_definite_probe(matrix)

    def test_nonsymmetric_variant(self):
        matrix = sdd_matrix(256, 6.0, seed=3, symmetric=False)
        assert not is_symmetric(matrix)

    def test_jacobi_spectral_radius_below_one(self):
        matrix = sdd_matrix(256, 6.0, seed=4)
        assert jacobi_iteration_spectral_radius(matrix) < 1.0

    def test_invalid_dominance(self):
        with pytest.raises(ConfigurationError):
            sdd_matrix(64, 4.0, seed=5, dominance=1.0)

    def test_deterministic(self):
        a = sdd_matrix(64, 4.0, seed=6)
        b = sdd_matrix(64, 4.0, seed=6)
        assert a.allclose(b)


class TestSPDCliques:
    def test_symmetric_positive_definite(self):
        matrix = spd_clique_matrix(256, 6.0, seed=1)
        assert is_symmetric(matrix)
        assert positive_definite_probe(matrix)

    def test_not_diagonally_dominant(self):
        matrix = spd_clique_matrix(256, 6.0, seed=1)
        assert not is_strictly_diagonally_dominant(matrix)

    def test_jacobi_divergent(self):
        matrix = spd_clique_matrix(256, 6.0, seed=1)
        assert jacobi_iteration_spectral_radius(matrix) > 1.0

    def test_eigenvalues_positive_dense_check(self):
        matrix = spd_clique_matrix(128, 5.0, seed=2)
        eigenvalues = np.linalg.eigvalsh(matrix.to_dense())
        assert eigenvalues.min() > 0

    def test_margin_guard(self):
        with pytest.raises(ConfigurationError, match="margin"):
            spd_clique_matrix(64, 5.0, seed=3, margin=0.2, coupling=2.0)


class TestSkewVariant:
    def test_nonsymmetric_with_pd_symmetric_part(self):
        matrix = spd_clique_skew_matrix(256, 6.0, seed=1)
        assert not is_symmetric(matrix)
        dense = matrix.to_dense()
        sym_part = (dense + dense.T) / 2
        assert np.linalg.eigvalsh(sym_part).min() > 0

    def test_skew_part_scales_with_gamma(self):
        small = spd_clique_skew_matrix(128, 5.0, seed=2, gamma=0.1)
        large = spd_clique_skew_matrix(128, 5.0, seed=2, gamma=1.0)

        def skew_norm(matrix):
            dense = matrix.to_dense()
            return np.linalg.norm((dense - dense.T) / 2)

        assert skew_norm(large) > 5 * skew_norm(small)


class TestIndefiniteFamilies:
    def test_sdd_indefinite_is_dominant_but_mixed_sign(self):
        matrix = sdd_indefinite_matrix(256, 6.0, seed=1)
        assert is_strictly_diagonally_dominant(matrix)
        diag = matrix.diagonal()
        assert (diag > 0).any() and (diag < 0).any()

    def test_sdd_indefinite_jacobi_still_contracts(self):
        matrix = sdd_indefinite_matrix(256, 6.0, seed=2)
        assert jacobi_iteration_spectral_radius(matrix) < 1.0

    def test_balanced_indefinite_spectrum_symmetric_about_origin(self):
        matrix = balanced_indefinite_matrix(128, seed=1)
        assert is_symmetric(matrix)
        eigenvalues = np.sort(np.linalg.eigvalsh(matrix.to_dense()))
        np.testing.assert_allclose(
            eigenvalues, -eigenvalues[::-1], rtol=1e-8, atol=1e-10
        )

    def test_balanced_indefinite_not_dominant(self):
        matrix = balanced_indefinite_matrix(128, seed=1)
        assert not is_strictly_diagonally_dominant(matrix)

    def test_ill_conditioned_spd_margin(self):
        matrix = ill_conditioned_spd_matrix(128, 6.0, seed=1, margin=1e-3)
        eigenvalues = np.linalg.eigvalsh(matrix.to_dense())
        assert 0 < eigenvalues.min() < 0.05
        assert eigenvalues.max() / eigenvalues.min() > 1e3
