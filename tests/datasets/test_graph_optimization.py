"""Tests for the graph-theory and optimization workloads."""

import numpy as np
import pytest

from repro.datasets.graph import (
    grounded_laplacian_system,
    laplacian_matrix,
    random_graph_edges,
    regularized_laplacian_system,
)
from repro.datasets.optimization import (
    network_flow_system,
    normal_equations_system,
    sparse_design_matrix,
)
from repro.errors import ConfigurationError
from repro.sparse.properties import is_symmetric, positive_definite_probe


class TestGraph:
    def test_edges_are_valid(self):
        u, v, w = random_graph_edges(100, 6.0, seed=1)
        assert np.all(u < v)
        assert np.all(w > 0)
        assert u.max() < 100

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            random_graph_edges(1, 2.0, seed=1)
        with pytest.raises(ConfigurationError):
            random_graph_edges(10, 0.0, seed=1)

    def test_laplacian_rows_sum_to_zero(self):
        u, v, w = random_graph_edges(50, 4.0, seed=2)
        lap = laplacian_matrix(u, v, w, 50)
        np.testing.assert_allclose(
            lap.matvec(np.ones(50)), 0.0, atol=1e-10
        )
        assert is_symmetric(lap)

    def test_grounded_laplacian_is_spd(self):
        problem = grounded_laplacian_system(80, seed=3)
        assert problem.n == 79  # one vertex removed
        assert is_symmetric(problem.matrix)
        assert positive_definite_probe(problem.matrix)

    def test_regularized_laplacian_is_spd(self):
        problem = regularized_laplacian_system(80, epsilon=0.1, seed=3)
        assert problem.n == 80
        assert positive_definite_probe(problem.matrix)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            regularized_laplacian_system(20, epsilon=0.0)

    def test_grounded_system_solvable(self):
        from repro.solvers import ConjugateGradientSolver

        problem = grounded_laplacian_system(100, seed=4)
        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        assert result.converged
        assert problem.relative_error(result.x) < 1e-2


class TestOptimization:
    def test_design_matrix_row_nnz(self):
        design = sparse_design_matrix(50, 20, nnz_per_row=4, seed=1)
        np.testing.assert_array_equal(design.row_lengths(), 4)

    def test_design_matrix_invalid_nnz(self):
        with pytest.raises(ConfigurationError):
            sparse_design_matrix(10, 5, nnz_per_row=6, seed=1)

    def test_normal_equations_recover_coefficients(self):
        problem = normal_equations_system(
            n_samples=800, n_features=200, nnz_per_row=6, seed=2
        )
        assert is_symmetric(problem.matrix)
        from repro.solvers import ConjugateGradientSolver

        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        assert result.converged
        assert problem.relative_error(result.x) < 1e-2

    def test_normal_equations_invalid_ridge(self):
        with pytest.raises(ConfigurationError):
            normal_equations_system(ridge=0.0)

    def test_gram_matrix_matches_direct_computation(self):
        problem = normal_equations_system(
            n_samples=100, n_features=30, nnz_per_row=3, ridge=0.5, seed=3
        )
        design = sparse_design_matrix(100, 30, nnz_per_row=3, seed=3)
        expected = design.to_dense().T @ design.to_dense() + 0.5 * np.eye(30)
        np.testing.assert_allclose(
            problem.matrix.to_dense(), expected, rtol=1e-10
        )

    def test_network_flow_wraps_laplacian(self):
        problem = network_flow_system(n_nodes=60, seed=4)
        assert problem.metadata["kind"] == "optimization"
        assert problem.name == "network_flow_60"
        assert positive_definite_probe(problem.matrix)
