"""Tests for the ASCII residual-history renderer."""

import numpy as np

from repro.analysis import render_residual_history
from repro.datasets import poisson_2d
from repro.solvers import ConjugateGradientSolver
from repro.solvers.base import OpCounter, SolveResult, SolveStatus


def make_result(history):
    return SolveResult(
        solver="cg",
        status=SolveStatus.CONVERGED,
        x=np.zeros(1, dtype=np.float32),
        iterations=len(history),
        residual_history=np.asarray(history, dtype=np.float64),
        ops=OpCounter(),
    )


class TestRenderer:
    def test_real_solve_renders(self):
        problem = poisson_2d(16)
        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        art = render_residual_history(result)
        lines = art.splitlines()
        assert len(lines) == 10  # 8 bands + axis + caption
        assert "final" in lines[-1]
        # Converging solve: the top band has fewer marks than the bottom.
        assert lines[0].count("#") < lines[-3].count("#")

    def test_empty_history(self):
        assert "no finite residuals" in render_residual_history(make_result([]))

    def test_nonfinite_entries_handled(self):
        art = render_residual_history(make_result([1.0, float("inf"), 0.5]))
        assert "iterations 1..3" in art

    def test_flat_history_does_not_crash(self):
        art = render_residual_history(make_result([0.5, 0.5, 0.5]))
        assert "iterations 1..3" in art

    def test_width_buckets_long_histories(self):
        history = np.geomspace(1.0, 1e-6, 500)
        art = render_residual_history(make_result(history), width=40)
        first_band = art.splitlines()[0]
        assert len(first_band) <= len("10^+000.0 |") + 40 + 2
