"""Tests for the Table I extension solvers: Gauss-Seidel, SOR, GMRES."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solvers import (
    GaussSeidelSolver,
    GMRESSolver,
    JacobiSolver,
    SolveStatus,
    SORSolver,
)
from repro.sparse import CSRMatrix


class TestGaussSeidel:
    def test_converges_faster_than_jacobi(self, spd_system):
        matrix, b, _ = spd_system
        gs = GaussSeidelSolver().solve(matrix, b)
        jacobi = JacobiSolver().solve(matrix, b)
        assert gs.converged and jacobi.converged
        assert gs.iterations <= jacobi.iterations

    def test_zero_diagonal_breaks_down(self):
        dense = np.array([[0.0, 1.0], [1.0, 2.0]])
        result = GaussSeidelSolver().solve(CSRMatrix.from_dense(dense), np.ones(2))
        assert result.status is SolveStatus.BREAKDOWN

    def test_one_sweep_matches_manual(self):
        dense = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([3.0, 4.0], dtype=np.float32)
        solver = GaussSeidelSolver(max_iterations=1)
        result = solver.solve(CSRMatrix.from_dense(dense), b)
        # x0 = 0: x_0 = 3/2; x_1 = (4 - 1*1.5)/3
        np.testing.assert_allclose(
            result.x, [1.5, (4 - 1.5) / 3], rtol=1e-6
        )


class TestSOR:
    def test_omega_one_equals_gauss_seidel(self, spd_system):
        matrix, b, _ = spd_system
        sor = SORSolver(omega=1.0, max_iterations=5, dtype=np.float64)
        gs = GaussSeidelSolver(max_iterations=5, dtype=np.float64)
        np.testing.assert_allclose(
            sor.solve(matrix, b).x, gs.solve(matrix, b).x, rtol=1e-10
        )

    def test_overrelaxation_accelerates_poisson(self):
        from repro.datasets import poisson_2d

        problem = poisson_2d(12)
        gs_result = SORSolver(omega=1.0).solve(problem.matrix, problem.b)
        sor_result = SORSolver(omega=1.6).solve(problem.matrix, problem.b)
        assert gs_result.converged and sor_result.converged
        assert sor_result.iterations < gs_result.iterations

    @pytest.mark.parametrize("omega", [0.0, 2.0, -1.0, 2.5])
    def test_invalid_omega_rejected(self, omega):
        with pytest.raises(ConfigurationError, match="omega"):
            SORSolver(omega=omega)


class TestGMRES:
    def test_solves_nonsymmetric(self, rng):
        from repro.datasets.generators import sdd_matrix

        matrix = sdd_matrix(150, 6.0, seed=9, symmetric=False)
        x_true = rng.standard_normal(150)
        b = matrix.matvec(x_true).astype(np.float32)
        result = GMRESSolver().solve(matrix, b)
        assert result.converged
        assert np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true) < 1e-3

    def test_full_gmres_exact_in_n_steps(self):
        n = 12
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((n, n)) + n * np.eye(n)
        solver = GMRESSolver(restart=n, tolerance=1e-10, dtype=np.float64)
        result = solver.solve(CSRMatrix.from_dense(dense), rng.standard_normal(n))
        assert result.converged
        assert result.iterations <= n + 1

    def test_restart_bounds_memory_but_still_converges(self, spd_system):
        matrix, b, _ = spd_system
        result = GMRESSolver(restart=5).solve(matrix, b)
        assert result.converged

    def test_invalid_restart(self):
        with pytest.raises(ConfigurationError, match="restart"):
            GMRESSolver(restart=0)

    def test_handles_indefinite_where_cg_fails(self):
        """GMRES minimizes the residual, so symmetric indefinite is fine."""
        from repro.solvers import ConjugateGradientSolver

        rng = np.random.default_rng(3)
        dense = np.diag(np.concatenate([np.linspace(1, 3, 20),
                                        -np.linspace(1, 3, 20)]))
        matrix = CSRMatrix.from_dense(dense)
        b = rng.standard_normal(40).astype(np.float32)
        gmres_result = GMRESSolver(restart=45).solve(matrix, b)
        assert gmres_result.converged
