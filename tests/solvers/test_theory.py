"""Theory-vs-measurement tests: the solvers obey their own math."""

import math

import numpy as np
import pytest

from repro.datasets import poisson_2d
from repro.errors import ConfigurationError
from repro.solvers import ChebyshevSolver, ConjugateGradientSolver, JacobiSolver
from repro.solvers.theory import (
    cg_iterations,
    chebyshev_iterations,
    poisson_2d_condition_number,
    poisson_2d_jacobi_radius,
    stationary_iterations,
    steepest_descent_iterations,
)
from repro.sparse.properties import jacobi_iteration_spectral_radius


class TestClosedForms:
    def test_poisson_condition_number_matches_dense(self):
        nx = 10
        problem = poisson_2d(nx)
        eigenvalues = np.linalg.eigvalsh(problem.matrix.to_dense())
        exact = eigenvalues.max() / eigenvalues.min()
        assert poisson_2d_condition_number(nx) == pytest.approx(exact, rel=1e-10)

    def test_poisson_jacobi_radius_matches_power_iteration(self):
        nx = 12
        problem = poisson_2d(nx)
        estimated = jacobi_iteration_spectral_radius(
            problem.matrix, n_iters=3000
        )
        assert poisson_2d_jacobi_radius(nx) == pytest.approx(estimated, rel=1e-2)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            stationary_iterations(0.5, tolerance=2.0)
        with pytest.raises(ConfigurationError):
            cg_iterations(0.5)
        with pytest.raises(ConfigurationError):
            steepest_descent_iterations(0.9)

    def test_divergent_stationary_is_infinite(self):
        assert math.isinf(stationary_iterations(1.0))
        assert math.isinf(stationary_iterations(1.5))

    def test_trivial_cases(self):
        assert stationary_iterations(0.0) == 1.0
        assert cg_iterations(1.0) == 1.0
        assert steepest_descent_iterations(1.0) == 1.0

    def test_cg_beats_steepest_descent_asymptotically(self):
        for kappa in (10.0, 100.0, 10000.0):
            assert cg_iterations(kappa) < steepest_descent_iterations(kappa)


class TestTheoryPredictsMeasurement:
    @pytest.mark.parametrize("nx", [12, 20])
    def test_jacobi_iterations_match_radius_prediction(self, nx):
        problem = poisson_2d(nx)
        result = JacobiSolver(max_iterations=20000).solve(
            problem.matrix, problem.b
        )
        assert result.converged
        predicted = stationary_iterations(
            poisson_2d_jacobi_radius(nx), tolerance=1e-5
        )
        # The prediction is for error contraction; residual convergence
        # tracks it within a small factor.
        assert predicted / 3 < result.iterations < predicted * 3

    @pytest.mark.parametrize("nx", [16, 24])
    def test_cg_iterations_below_bound(self, nx):
        problem = poisson_2d(nx)
        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        assert result.converged
        bound = cg_iterations(poisson_2d_condition_number(nx), tolerance=1e-5)
        assert result.iterations <= bound * 1.2

    def test_chebyshev_near_bound_with_exact_interval(self):
        nx = 16
        problem = poisson_2d(nx)
        eigenvalues = np.linalg.eigvalsh(problem.matrix.to_dense())
        solver = ChebyshevSolver(
            eig_bounds=(float(eigenvalues.min()), float(eigenvalues.max()))
        )
        result = solver.solve(problem.matrix, problem.b)
        assert result.converged
        bound = chebyshev_iterations(
            poisson_2d_condition_number(nx), tolerance=1e-5
        )
        # Chebyshev should land within a small factor of its bound —
        # neither wildly better (it cannot adapt) nor worse.
        assert bound / 4 < result.iterations < bound * 1.5

    def test_jacobi_scaling_with_grid_refinement(self):
        """kappa ~ h^-2: doubling the grid should ~quadruple Jacobi."""
        small = poisson_2d(10)
        large = poisson_2d(20)
        iters_small = JacobiSolver(max_iterations=20000).solve(
            small.matrix, small.b
        ).iterations
        iters_large = JacobiSolver(max_iterations=20000).solve(
            large.matrix, large.b
        ).iterations
        ratio = iters_large / iters_small
        assert 2.0 < ratio < 8.0
