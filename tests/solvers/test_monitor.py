"""Tests for the convergence/divergence monitor."""

import math

import pytest

from repro.solvers import SolveStatus
from repro.solvers.monitor import ConvergenceMonitor, scaled_setup_iterations


class TestScaledSetup:
    def test_reference_size_gives_paper_value(self):
        assert scaled_setup_iterations(4096) == 200

    def test_scales_linearly(self):
        assert scaled_setup_iterations(8192) == 400
        assert scaled_setup_iterations(2048) == 100

    def test_floor(self):
        assert scaled_setup_iterations(10) == 20

    def test_nonpositive_rows_fall_back_to_base(self):
        assert scaled_setup_iterations(0) == 200


class TestMonitor:
    def make(self, **kwargs):
        defaults = dict(
            b_norm=1.0,
            tolerance=1e-5,
            max_iterations=100,
            setup_iterations=10,
            divergence_factor=1e4,
        )
        defaults.update(kwargs)
        return ConvergenceMonitor(**defaults)

    def test_converges_at_tolerance(self):
        monitor = self.make()
        assert monitor.update(1e-5) is SolveStatus.CONVERGED

    def test_keeps_running_above_tolerance(self):
        monitor = self.make()
        assert monitor.update(0.5) is None
        assert monitor.iterations == 1

    def test_nan_diverges_immediately(self):
        monitor = self.make()
        assert monitor.update(float("nan")) is SolveStatus.DIVERGED

    def test_inf_diverges_immediately(self):
        monitor = self.make()
        assert monitor.update(float("inf")) is SolveStatus.DIVERGED

    def test_growth_within_setup_is_tolerated(self):
        monitor = self.make(setup_iterations=5)
        monitor.update(1e-3)
        assert monitor.update(1e3) is None  # huge spike, but inside setup

    def test_growth_after_setup_diverges(self):
        monitor = self.make(setup_iterations=3, divergence_factor=100.0)
        for _ in range(4):
            assert monitor.update(1.0) is None
        assert monitor.update(150.0) is SolveStatus.DIVERGED

    def test_best_residual_tracks_minimum(self):
        monitor = self.make(setup_iterations=1, divergence_factor=10.0)
        monitor.update(1.0)
        monitor.update(0.01)
        # 0.05 is 5x the best (0.01): fine.  0.2 is 20x: divergence.
        assert monitor.update(0.05) is None
        assert monitor.update(0.2) is SolveStatus.DIVERGED

    def test_max_iterations(self):
        monitor = self.make(max_iterations=3, setup_iterations=0,
                            divergence_factor=1e12)
        assert monitor.update(1.0) is None
        assert monitor.update(1.0) is None
        assert monitor.update(1.0) is SolveStatus.MAX_ITERATIONS

    def test_relative_normalization(self):
        monitor = self.make(b_norm=100.0)
        assert monitor.relative(1.0) == pytest.approx(0.01)
        assert monitor.update(100.0 * 1e-5) is SolveStatus.CONVERGED

    def test_zero_b_norm_treated_as_one(self):
        monitor = self.make(b_norm=0.0)
        assert monitor.relative(0.5) == 0.5

    def test_history_array(self):
        monitor = self.make()
        monitor.update(0.5)
        monitor.update(0.25)
        history = monitor.history_array()
        assert history.tolist() == [0.5, 0.25]

    def test_best_starts_infinite(self):
        assert math.isinf(self.make().best)
