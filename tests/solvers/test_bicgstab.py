"""BiCG-STAB-specific tests (paper Algorithm 3)."""

import numpy as np
import pytest

from repro.solvers import BiCGStabSolver, SolveStatus
from repro.sparse import CSRMatrix


class TestBiCGStab:
    def test_solves_nonsymmetric_system(self, rng):
        from repro.datasets.generators import sdd_matrix

        matrix = sdd_matrix(200, 6.0, seed=3, symmetric=False)
        x_true = rng.standard_normal(200)
        b = matrix.matvec(x_true).astype(np.float32)
        result = BiCGStabSolver().solve(matrix, b)
        assert result.converged
        error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        assert error < 1e-3

    def test_faster_than_jacobi_on_slowly_contracting_system(self, rng):
        """With all-positive couplings (no sign cancellation) the Jacobi
        iteration matrix's spectral radius is close to 1, while the Krylov
        method converges in a handful of steps."""
        from repro.solvers import JacobiSolver
        from repro.sparse import COOMatrix

        n = 300
        i = np.arange(n - 1)
        rows = np.concatenate([i, i + 1, np.arange(n)])
        cols = np.concatenate([i + 1, i, np.arange(n)])
        vals = np.concatenate([np.ones(n - 1), np.ones(n - 1),
                               np.full(n, 2.05)])
        matrix = COOMatrix((n, n), rows, cols, vals).to_csr()
        b = rng.standard_normal(n).astype(np.float32)
        bicg = BiCGStabSolver().solve(matrix, b)
        jacobi = JacobiSolver(max_iterations=8000).solve(matrix, b)
        assert bicg.converged and jacobi.converged
        assert bicg.iterations < jacobi.iterations / 5

    def test_omega_breakdown_on_skew_system(self):
        """Pure skew-symmetric A: (As, s) = 0 identically -> omega = 0."""
        n = 16
        dense = np.zeros((n, n))
        for i in range(n - 1):
            dense[i, i + 1] = 1.0
            dense[i + 1, i] = -1.0
        matrix = CSRMatrix.from_dense(dense)
        b = np.ones(n, dtype=np.float32)
        result = BiCGStabSolver(max_iterations=100).solve(matrix, b)
        assert result.status in (SolveStatus.BREAKDOWN, SolveStatus.DIVERGED,
                                 SolveStatus.MAX_ITERATIONS)
        assert not result.converged

    def test_two_spmv_per_iteration(self, spd_system):
        matrix, b, _ = spd_system
        result = BiCGStabSolver().solve(matrix, b)
        # init contributes 1 spmv; each full iteration 2.
        loop_spmv = result.ops.spmv_count() - 1
        assert loop_spmv == pytest.approx(2 * result.iterations, abs=2)

    def test_identity_converges_immediately(self):
        matrix = CSRMatrix.identity(30, dtype=np.float32)
        b = np.ones(30, dtype=np.float32)
        result = BiCGStabSolver().solve(matrix, b)
        assert result.converged
        assert result.iterations <= 2

    def test_handles_symmetric_spd_as_well(self, spd_system):
        """'Non-symmetric' is its Table I target, but SPD must still work."""
        matrix, b, x_true = spd_system
        result = BiCGStabSolver().solve(matrix, b)
        assert result.converged
        error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        assert error < 1e-3

    def test_divergence_detected_on_balanced_indefinite(self):
        from repro.datasets.generators import balanced_indefinite_matrix

        matrix = balanced_indefinite_matrix(2048, seed=48)
        rng = np.random.default_rng(1)
        b = matrix.matvec(rng.standard_normal(2048)).astype(np.float32)
        result = BiCGStabSolver().solve(matrix, b)
        assert result.status.failed
