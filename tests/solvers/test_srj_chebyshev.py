"""Tests for the SRJ and Chebyshev extension solvers."""

import numpy as np
import pytest

from repro.datasets import poisson_2d
from repro.errors import ConfigurationError
from repro.solvers import (
    ChebyshevSolver,
    ConjugateGradientSolver,
    JacobiSolver,
    ScheduledRelaxationJacobiSolver,
)


@pytest.fixture(scope="module")
def poisson():
    return poisson_2d(24)


class TestSRJ:
    def test_beats_plain_jacobi_on_poisson(self, poisson):
        """The headline of the paper's reference [74]: scheduled
        relaxation accelerates Jacobi by large factors on PDE meshes."""
        jacobi = JacobiSolver(max_iterations=8000).solve(
            poisson.matrix, poisson.b
        )
        srj = ScheduledRelaxationJacobiSolver(
            levels=2, max_iterations=8000
        ).solve(poisson.matrix, poisson.b)
        assert jacobi.converged and srj.converged
        assert srj.iterations < jacobi.iterations / 2

    def test_more_levels_help(self, poisson):
        p2 = ScheduledRelaxationJacobiSolver(levels=2, max_iterations=8000)
        p3 = ScheduledRelaxationJacobiSolver(levels=3, max_iterations=8000)
        r2 = p2.solve(poisson.matrix, poisson.b)
        r3 = p3.solve(poisson.matrix, poisson.b)
        assert r3.converged
        assert r3.iterations <= r2.iterations

    def test_levels_one_matches_plain_jacobi_iterations(self, spd_system):
        """P=1 is a single unit factor: behaviour equals plain Jacobi
        (up to the residual definition)."""
        matrix, b, _ = spd_system
        srj = ScheduledRelaxationJacobiSolver(levels=1).solve(matrix, b)
        jacobi = JacobiSolver().solve(matrix, b)
        assert srj.converged
        assert abs(srj.iterations - jacobi.iterations) <= 3

    def test_custom_schedule(self, spd_system):
        matrix, b, _ = spd_system
        solver = ScheduledRelaxationJacobiSolver(schedule=(1.2, 0.8))
        assert solver.solve(matrix, b).converged

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError, match="no published schedule"):
            ScheduledRelaxationJacobiSolver(levels=9)
        with pytest.raises(ConfigurationError, match="positive"):
            ScheduledRelaxationJacobiSolver(schedule=(1.0, -0.5))

    def test_stable_on_strongly_dominant_matrix(self, spd_system):
        """The schedule rescaling must keep narrow spectra stable."""
        matrix, b, x_true = spd_system
        result = ScheduledRelaxationJacobiSolver(levels=3).solve(matrix, b)
        assert result.converged
        error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        assert error < 1e-3

    def test_zero_diagonal_breaks_down(self):
        from repro.sparse import CSRMatrix

        dense = np.array([[0.0, 1.0], [1.0, 2.0]])
        result = ScheduledRelaxationJacobiSolver().solve(
            CSRMatrix.from_dense(dense), np.ones(2, dtype=np.float32)
        )
        assert result.status.failed


class TestChebyshev:
    def test_converges_on_poisson_near_cg_rate(self, poisson):
        cheb = ChebyshevSolver(max_iterations=8000).solve(
            poisson.matrix, poisson.b
        )
        cg = ConjugateGradientSolver().solve(poisson.matrix, poisson.b)
        assert cheb.converged
        # Chebyshev matches CG's asymptotic rate given good bounds; with
        # estimated bounds allow a generous factor.
        assert cheb.iterations < cg.iterations * 8

    def test_explicit_bounds_accelerate(self, poisson):
        dense = poisson.matrix.to_dense()
        eigenvalues = np.linalg.eigvalsh(dense)
        exact = ChebyshevSolver(
            eig_bounds=(float(eigenvalues.min()), float(eigenvalues.max()))
        ).solve(poisson.matrix, poisson.b)
        estimated = ChebyshevSolver().solve(poisson.matrix, poisson.b)
        assert exact.converged and estimated.converged
        assert exact.iterations <= estimated.iterations

    def test_no_inner_products_in_loop(self, poisson):
        """Chebyshev's selling point: zero dot products per iteration."""
        result = ChebyshevSolver().solve(poisson.matrix, poisson.b)
        assert result.converged
        assert result.ops.counts.get("dot", 0) == 0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            ChebyshevSolver(eig_bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            ChebyshevSolver(eig_bounds=(0.0, 1.0))

    def test_accuracy(self, spd_system):
        matrix, b, x_true = spd_system
        result = ChebyshevSolver().solve(matrix, b)
        assert result.converged
        error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        assert error < 1e-3
