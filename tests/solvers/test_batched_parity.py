"""Bit-identity of the batched lockstep drivers vs sequential solves.

These are the tests the batched backend's contract lives or dies by:
for every supported solver, batch width and dtype, each member of a
``solve_batched`` call must equal its own ``solver.solve`` run in every
observable — status, iteration count, iterate (``array_equal``, not
``allclose``), residual history, and the kernel-op tally the cost models
consume.  The campaign-CSV harness (``tests/test_campaign_batched.py``)
and the ``batched-parity`` CI job build on this foundation.
"""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.solvers import (
    BATCHED_SOLVERS,
    BiCGStabSolver,
    ConjugateGradientSolver,
    GaussSeidelSolver,
    JacobiSolver,
    solve_batched,
)
from repro.sparse import CSRMatrix
from repro.telemetry import Telemetry

SOLVERS = {
    "jacobi": JacobiSolver,
    "cg": ConjugateGradientSolver,
    "bicgstab": BiCGStabSolver,
}


def laplacian_family(rng, n: int, k: int, dtype) -> list[CSRMatrix]:
    """K same-pattern, different-value diagonally dominant matrices."""
    base = (
        2.0 * np.eye(n)
        - np.eye(n, k=1)
        - np.eye(n, k=-1)
        + np.diag(np.full(n, 0.5))
    )
    mats = []
    for _ in range(k):
        jitter = 1.0 + 0.05 * rng.standard_normal()
        mats.append(CSRMatrix.from_dense((jitter * base).astype(dtype)))
    return mats


def assert_member_parity(batched, sequential):
    assert batched.solver == sequential.solver
    assert batched.status == sequential.status
    assert batched.iterations == sequential.iterations
    assert np.array_equal(batched.x, sequential.x)
    assert batched.x.dtype == sequential.x.dtype
    assert np.array_equal(
        batched.residual_history, sequential.residual_history
    )
    assert batched.ops.counts == sequential.ops.counts
    assert batched.ops.sizes == sequential.ops.sizes


@pytest.mark.parametrize("name", sorted(BATCHED_SOLVERS))
@pytest.mark.parametrize("k", [1, 2, 7])
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestLockstepBitIdentity:
    def test_matches_sequential(self, rng, name, k, dtype):
        solver = SOLVERS[name](dtype=dtype)
        mats = laplacian_family(rng, 40, k, dtype)
        bs = [rng.standard_normal(40).astype(dtype) for _ in range(k)]
        batched = solve_batched(solver, mats, bs)
        for m, b, result in zip(mats, bs, batched):
            assert_member_parity(result, solver.solve(m, b))

    def test_matches_sequential_with_x0(self, rng, name, k, dtype):
        solver = SOLVERS[name](dtype=dtype)
        mats = laplacian_family(rng, 32, k, dtype)
        bs = [rng.standard_normal(32).astype(dtype) for _ in range(k)]
        x0s = [rng.standard_normal(32).astype(dtype) for _ in range(k)]
        batched = solve_batched(solver, mats, bs, x0s)
        for m, b, x0, result in zip(mats, bs, x0s, batched):
            assert_member_parity(result, solver.solve(m, b, x0))


class TestMixedExitPaths:
    def test_members_finish_at_different_iterations(self, rng):
        """A converged member must not perturb the stragglers."""
        solver = ConjugateGradientSolver(max_iterations=200)
        mats = laplacian_family(rng, 30, 3, np.float32)
        # Member 1 starts at the exact solution: instant convergence.
        x_true = rng.standard_normal(30).astype(np.float32)
        bs = [
            rng.standard_normal(30).astype(np.float32),
            mats[1].matvec(x_true).astype(np.float32),
            rng.standard_normal(30).astype(np.float32),
        ]
        x0s = [None, x_true, None]
        batched = solve_batched(solver, mats, bs, x0s)
        for m, b, x0, result in zip(mats, bs, x0s, batched):
            assert_member_parity(result, solver.solve(m, b, x0))
        iteration_counts = {r.iterations for r in batched}
        assert len(iteration_counts) > 1  # genuinely mixed exits

    def test_converged_mixed_with_max_iterations(self, rng):
        solver = JacobiSolver(max_iterations=5)
        mats = laplacian_family(rng, 24, 2, np.float32)
        x_true = rng.standard_normal(24).astype(np.float32)
        bs = [
            mats[0].matvec(x_true).astype(np.float32),
            rng.standard_normal(24).astype(np.float32),
        ]
        x0s = [x_true, None]
        batched = solve_batched(solver, mats, bs, x0s)
        for m, b, x0, result in zip(mats, bs, x0s, batched):
            assert_member_parity(result, solver.solve(m, b, x0))
        statuses = {r.status for r in batched}
        assert len(statuses) > 1

    def test_jacobi_zero_diagonal_breakdown_isolated(self, rng):
        """One broken member breaks down; its neighbors solve on."""
        solver = JacobiSolver(max_iterations=20)
        mats = laplacian_family(rng, 16, 3, np.float32)
        data = mats[1].data.copy()
        diag_positions = np.flatnonzero(
            mats[1].row_ids() == mats[1].indices
        )
        data[diag_positions[4]] = 0.0
        mats[1] = mats[1].with_data(data)
        bs = [rng.standard_normal(16).astype(np.float32) for _ in range(3)]
        batched = solve_batched(solver, mats, bs)
        for m, b, result in zip(mats, bs, batched):
            assert_member_parity(result, solver.solve(m, b))

    def test_bicgstab_divergence_matches(self, rng):
        """An indefinite member diverges identically under lockstep."""
        solver = BiCGStabSolver(max_iterations=50)
        base = laplacian_family(rng, 20, 1, np.float32)[0]
        hostile = base.with_data((-base.data).astype(np.float32))
        mats = [base, base.with_data(base.data.copy()), hostile]
        # Same pattern throughout — hostile only flips values.
        bs = [rng.standard_normal(20).astype(np.float32) for _ in range(3)]
        batched = solve_batched(solver, mats, bs)
        for m, b, result in zip(mats, bs, batched):
            assert_member_parity(result, solver.solve(m, b))


class TestFallbacks:
    def test_unsupported_solver_falls_back_sequential(self, rng):
        solver = GaussSeidelSolver(max_iterations=10)
        assert solver.name not in BATCHED_SOLVERS
        mats = laplacian_family(rng, 12, 2, np.float32)
        bs = [rng.standard_normal(12).astype(np.float32) for _ in range(2)]
        collector = Telemetry()
        with collector.activate():
            batched = solve_batched(solver, mats, bs)
        for m, b, result in zip(mats, bs, batched):
            assert_member_parity(result, solver.solve(m, b))
        counters = collector.as_dict()["counters"]
        assert counters["batch.groups"] == 1
        assert counters["batch.items"] == 2
        assert counters["batch.fallback_sequential"] == 2

    def test_pattern_mismatch_falls_back_sequential(self, rng):
        solver = ConjugateGradientSolver(max_iterations=10)
        a = laplacian_family(rng, 12, 1, np.float32)[0]
        dense = np.eye(12, dtype=np.float32) * 3.0
        dense[0, 11] = 1.0
        b_matrix = CSRMatrix.from_dense(dense)
        bs = [rng.standard_normal(12).astype(np.float32) for _ in range(2)]
        collector = Telemetry()
        with collector.activate():
            batched = solve_batched(solver, [a, b_matrix], bs)
        for m, rhs, result in zip([a, b_matrix], bs, batched):
            assert_member_parity(result, solver.solve(m, rhs))
        counters = collector.as_dict()["counters"]
        assert counters["batch.fallback_sequential"] == 2

    def test_lockstep_path_counts_no_fallback(self, rng):
        solver = ConjugateGradientSolver(max_iterations=10)
        mats = laplacian_family(rng, 12, 2, np.float32)
        bs = [rng.standard_normal(12).astype(np.float32) for _ in range(2)]
        collector = Telemetry()
        with collector.activate():
            solve_batched(solver, mats, bs)
        counters = collector.as_dict()["counters"]
        assert counters["batch.groups"] == 1
        assert counters["batch.items"] == 2
        assert "batch.fallback_sequential" not in counters
        spans = collector.as_dict()["spans"]
        assert "kernel.spmv_batched" in spans


class TestValidation:
    def test_length_mismatch_rejected(self, rng):
        solver = JacobiSolver()
        mats = laplacian_family(rng, 8, 2, np.float32)
        with pytest.raises(ShapeMismatchError, match="right-hand sides"):
            solve_batched(solver, mats, [np.zeros(8, dtype=np.float32)])
        with pytest.raises(ShapeMismatchError, match="initial guesses"):
            solve_batched(
                solver,
                mats,
                [np.zeros(8, dtype=np.float32)] * 2,
                [None],
            )

    def test_empty_batch_returns_empty(self):
        assert solve_batched(JacobiSolver(), [], []) == []
