"""Behaviour every solver must share: contracts, shapes, op accounting."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.solvers import (
    SOLVER_REGISTRY,
    BiCGStabSolver,
    ConjugateGradientSolver,
    JacobiSolver,
    make_solver,
)
from repro.sparse import CSRMatrix

PAPER_SOLVERS = [JacobiSolver, ConjugateGradientSolver, BiCGStabSolver]
ALL_SOLVER_NAMES = sorted(SOLVER_REGISTRY)


@pytest.fixture(params=ALL_SOLVER_NAMES)
def any_solver(request):
    return make_solver(request.param, max_iterations=300)


class TestRegistry:
    def test_registry_names_match_classes(self):
        for name, cls in SOLVER_REGISTRY.items():
            assert cls.name == name

    def test_make_solver_unknown_name(self):
        with pytest.raises(KeyError, match="unknown solver"):
            make_solver("not_a_solver")

    def test_make_solver_forwards_kwargs(self):
        solver = make_solver("cg", tolerance=1e-3, max_iterations=7)
        assert solver.tolerance == 1e-3
        assert solver.max_iterations == 7


class TestContracts:
    def test_solves_spd_system(self, any_solver, spd_system):
        matrix, b, x_true = spd_system
        result = any_solver.solve(matrix, b)
        assert result.converged, f"{any_solver.name} failed: {result.status}"
        error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        assert error < 1e-3

    def test_rejects_rectangular(self, any_solver):
        matrix = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeMismatchError, match="square"):
            any_solver.solve(matrix, np.ones(2))

    def test_rejects_bad_b_shape(self, any_solver, small_csr):
        with pytest.raises(ShapeMismatchError):
            any_solver.solve(small_csr, np.ones(7))

    def test_rejects_bad_x0_shape(self, any_solver, small_csr):
        with pytest.raises(ShapeMismatchError):
            any_solver.solve(small_csr, np.ones(4), x0=np.ones(6))

    def test_zero_rhs_converges_immediately(self, any_solver, small_csr):
        result = any_solver.solve(small_csr, np.zeros(4))
        assert result.converged
        np.testing.assert_allclose(result.x, 0.0, atol=1e-6)

    def test_warm_start_helps(self, any_solver, spd_system):
        matrix, b, x_true = spd_system
        cold = any_solver.solve(matrix, b)
        warm = any_solver.solve(matrix, b, x0=x_true.astype(np.float32))
        assert warm.iterations <= cold.iterations

    def test_result_dtype_matches_solver(self, any_solver, spd_system):
        matrix, b, _ = spd_system
        result = any_solver.solve(matrix, b)
        assert result.x.dtype == any_solver.dtype

    def test_float64_configuration(self, spd_system):
        matrix, b, _ = spd_system
        solver = make_solver("cg", dtype=np.float64)
        result = solver.solve(matrix, b)
        assert result.converged
        assert result.x.dtype == np.float64

    def test_residual_history_length_matches_iterations(
        self, any_solver, spd_system
    ):
        matrix, b, _ = spd_system
        result = any_solver.solve(matrix, b)
        assert len(result.residual_history) == result.iterations

    def test_final_residual_below_tolerance(self, any_solver, spd_system):
        matrix, b, _ = spd_system
        result = any_solver.solve(matrix, b)
        assert result.final_residual <= any_solver.tolerance

    def test_x0_not_mutated(self, any_solver, spd_system):
        matrix, b, _ = spd_system
        x0 = np.ones(matrix.shape[0], dtype=np.float32)
        x0_copy = x0.copy()
        any_solver.solve(matrix, b, x0=x0)
        np.testing.assert_array_equal(x0, x0_copy)


class TestOpAccounting:
    @pytest.mark.parametrize("solver_cls", PAPER_SOLVERS)
    def test_loop_spmv_count_matches_schedule(self, solver_cls, spd_system):
        matrix, b, _ = spd_system
        result = solver_cls().solve(matrix, b)
        schedule = solver_cls.kernel_schedule()
        from repro.core.initialize import initialize_spmv_count

        init = initialize_spmv_count(solver_cls.name)
        expected_loop = schedule["spmv"] * result.iterations
        recorded_loop = result.ops.spmv_count() - init
        # The last (partial) iteration may cut the schedule short.
        assert abs(recorded_loop - expected_loop) <= schedule["spmv"] + 1

    def test_ops_empty_before_any_iteration(self, small_csr):
        result = JacobiSolver().solve(small_csr, np.zeros(4))
        # zero rhs: converges after the first residual check
        assert result.ops.spmv_count() <= 1

    def test_kernel_schedule_declared_for_all(self):
        for cls in SOLVER_REGISTRY.values():
            schedule = cls.kernel_schedule()
            assert schedule.get("spmv", 0) >= 1
