"""Equivalence tests for the Counter-backed :class:`OpCounter`.

The satellite swapped ``OpCounter``'s dict-churn internals for
:class:`collections.Counter`.  These tests pin the public behaviour
against a plain-dict reference implementation, including the edge case
``Counter.__add__`` would get wrong (zero-size records must survive a
merge, while ``+`` drops non-positive entries).
"""

import numpy as np

from repro.solvers.base import OpCounter


def reference_merge(a: OpCounter, b: OpCounter) -> tuple[dict, dict]:
    """Merge two counters the way the seed's dict loop did."""
    counts: dict[str, int] = {}
    sizes: dict[str, int] = {}
    for source in (a, b):
        for kind, count in source.counts.items():
            counts[kind] = counts.get(kind, 0) + count
        for kind, size in source.sizes.items():
            sizes[kind] = sizes.get(kind, 0) + size
    return counts, sizes


def test_record_tallies_counts_and_sizes():
    ops = OpCounter()
    ops.record("spmv", 100)
    ops.record("spmv", 50)
    ops.record("dot", 10)
    assert ops.counts == {"spmv": 2, "dot": 1}
    assert ops.sizes == {"spmv": 150, "dot": 10}
    assert ops.spmv_count() == 2


def test_merged_with_matches_dict_reference():
    rng = np.random.default_rng(5)
    kinds = ("spmv", "dot", "axpy", "scale", "vadd", "norm")
    a, b = OpCounter(), OpCounter()
    for ops in (a, b):
        for _ in range(200):
            ops.record(str(rng.choice(kinds)), int(rng.integers(0, 4096)))
    merged = a.merged_with(b)
    ref_counts, ref_sizes = reference_merge(a, b)
    assert dict(merged.counts) == ref_counts
    assert dict(merged.sizes) == ref_sizes


def test_merge_keeps_zero_size_kinds():
    # Counter.__add__ drops non-positive values; merged_with must not.
    a, b = OpCounter(), OpCounter()
    a.record("norm", 0)
    b.record("dot", 8)
    merged = a.merged_with(b)
    assert merged.counts == {"norm": 1, "dot": 1}
    assert merged.sizes["norm"] == 0


def test_merge_leaves_operands_untouched():
    a, b = OpCounter(), OpCounter()
    a.record("spmv", 7)
    b.record("spmv", 9)
    merged = a.merged_with(b)
    assert merged.sizes["spmv"] == 16
    assert a.sizes["spmv"] == 7 and b.sizes["spmv"] == 9


def test_dense_element_total_and_as_dict():
    ops = OpCounter()
    ops.record("spmv", 1000)
    ops.record("dot", 64)
    ops.record("axpy", 64)
    assert ops.dense_element_total() == 128
    as_dict = ops.as_dict()
    assert as_dict == {"spmv": 1, "dot": 1, "axpy": 1}
    assert type(as_dict) is dict
