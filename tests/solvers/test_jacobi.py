"""Jacobi-specific tests (paper Algorithm 1)."""

import numpy as np

from repro.solvers import JacobiSolver, SolveStatus
from repro.sparse import CSRMatrix


class TestJacobi:
    def test_matches_manual_iteration(self, small_csr):
        """One Jacobi step must equal x1 = c - T x0 computed by hand."""
        b = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        solver = JacobiSolver(max_iterations=1, dtype=np.float64)
        result = solver.solve(small_csr, b)
        dense = small_csr.to_dense()
        diag = np.diag(dense)
        t_matrix = (dense - np.diag(diag)) / diag[:, None]
        c = b / diag
        expected = c - t_matrix @ np.zeros(4)
        np.testing.assert_allclose(result.x, expected, rtol=1e-12)

    def test_zero_diagonal_breaks_down(self):
        dense = np.array([[0.0, 1.0], [1.0, 2.0]])
        result = JacobiSolver().solve(CSRMatrix.from_dense(dense), np.ones(2))
        assert result.status is SolveStatus.BREAKDOWN
        assert result.iterations == 0

    def test_diverges_when_spectral_radius_above_one(self):
        # Off-diagonal sums exceed the diagonal: rho(T) > 1.
        dense = np.array(
            [[1.0, 2.0, 2.0], [2.0, 1.0, 2.0], [2.0, 2.0, 1.0]]
        )
        solver = JacobiSolver(max_iterations=500, setup_iterations=10)
        result = solver.solve(CSRMatrix.from_dense(dense), np.ones(3))
        assert result.status is SolveStatus.DIVERGED

    def test_convergence_rate_tracks_dominance(self, rng):
        """Stronger dominance => faster convergence."""
        from tests.conftest import random_dense

        n = 80
        base = random_dense(rng, n, n, density=0.1)
        np.fill_diagonal(base, 0.0)
        b = rng.standard_normal(n).astype(np.float32)
        iterations = []
        for dominance in (1.2, 2.0, 8.0):
            dense = base.copy()
            np.fill_diagonal(dense, np.abs(base).sum(axis=1) * dominance)
            result = JacobiSolver().solve(CSRMatrix.from_dense(dense), b)
            assert result.converged
            iterations.append(result.iterations)
        assert iterations[0] > iterations[1] > iterations[2]

    def test_residual_is_true_residual(self, spd_system):
        """The D(x_{j+1}-x_j) shortcut must equal b - A x_j."""
        matrix, b, _ = spd_system
        solver = JacobiSolver(dtype=np.float64)
        result = solver.solve(matrix, b)
        assert result.converged
        # Verify via recomputation at the final iterate (one step back the
        # recursive residual matches the reported history within fp noise).
        final_true = np.linalg.norm(
            b.astype(np.float64) - matrix.matvec(result.x.astype(np.float64))
        ) / np.linalg.norm(b.astype(np.float64))
        assert final_true <= result.final_residual * 3 + 1e-12

    def test_spmv_operand_excludes_diagonal(self, spd_system):
        """Jacobi's recorded SpMV size is nnz(A) minus the diagonal."""
        matrix, b, _ = spd_system
        result = JacobiSolver().solve(matrix, b)
        expected_nnz = matrix.without_diagonal().nnz
        assert result.ops.sizes["spmv"] == expected_nnz * result.ops.counts["spmv"]
