"""Tests for the preconditioner implementations."""

import numpy as np
import pytest

from repro.datasets import poisson_2d
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError, SolverBreakdownError
from repro.solvers import PreconditionedCGSolver
from repro.solvers.preconditioners import (
    PRECONDITIONER_REGISTRY,
    IdentityPreconditioner,
    ILU0Preconditioner,
    JacobiPreconditioner,
    SSORPreconditioner,
    make_preconditioner,
)
from repro.sparse import CSRMatrix


@pytest.fixture
def spd_small():
    return sdd_matrix(60, 5.0, seed=88, symmetric=True)


class TestRegistry:
    def test_known_names(self):
        assert set(PRECONDITIONER_REGISTRY) == {
            "identity", "jacobi", "ssor", "ilu0"
        }

    def test_make_unknown(self, spd_small):
        with pytest.raises(KeyError, match="unknown preconditioner"):
            make_preconditioner("amg", spd_small)

    def test_make_forwards_kwargs(self, spd_small):
        pre = make_preconditioner("ssor", spd_small, omega=1.4)
        assert pre.omega == 1.4


class TestIdentity:
    def test_apply_is_copy(self, spd_small, rng):
        pre = IdentityPreconditioner(spd_small)
        r = rng.standard_normal(60)
        z = pre.apply(r)
        np.testing.assert_array_equal(z, r)
        assert z is not r
        assert pre.apply_cost_elements() == 0


class TestJacobi:
    def test_apply_divides_by_diagonal(self, spd_small, rng):
        pre = JacobiPreconditioner(spd_small)
        r = rng.standard_normal(60)
        np.testing.assert_allclose(
            pre.apply(r), r / spd_small.diagonal(), rtol=1e-12
        )

    def test_zero_diagonal_rejected(self):
        matrix = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SolverBreakdownError):
            JacobiPreconditioner(matrix)


class TestSSOR:
    def test_exact_on_diagonal_matrix(self, rng):
        diag = np.abs(rng.standard_normal(10)) + 1.0
        matrix = CSRMatrix.from_dense(np.diag(diag))
        pre = SSORPreconditioner(matrix, omega=1.0)
        r = rng.standard_normal(10)
        np.testing.assert_allclose(pre.apply(r), r / diag, rtol=1e-12)

    def test_matches_dense_formula(self, rng):
        """M = (D/w + L) (D/w)^-1 (D/w + U) * w/(2-w); apply == M^-1 r."""
        dense = np.array(
            [[4.0, -1.0, 0.0], [-1.0, 4.0, -1.0], [0.0, -1.0, 4.0]]
        )
        omega = 1.3
        matrix = CSRMatrix.from_dense(dense)
        pre = SSORPreconditioner(matrix, omega=omega)
        d_over_w = np.diag(np.diag(dense)) / omega
        lower = np.tril(dense, -1)
        upper = np.triu(dense, 1)
        m = (d_over_w + lower) @ np.linalg.inv(d_over_w) @ (d_over_w + upper)
        m *= omega / (2.0 - omega)
        r = rng.standard_normal(3)
        np.testing.assert_allclose(pre.apply(r), np.linalg.solve(m, r), rtol=1e-10)

    def test_invalid_omega(self, spd_small):
        with pytest.raises(ConfigurationError):
            SSORPreconditioner(spd_small, omega=2.0)

    def test_zero_diagonal_rejected(self):
        matrix = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SolverBreakdownError):
            SSORPreconditioner(matrix)


class TestILU0:
    def test_exact_lu_when_no_fill_needed(self):
        """On a tridiagonal matrix ILU(0) IS the exact LU factorization."""
        problem = poisson_2d(5, 1)  # 1-D chain: tridiagonal
        matrix = problem.matrix
        pre = ILU0Preconditioner(matrix)
        lower, upper = pre.factor_dense()
        np.testing.assert_allclose(lower @ upper, matrix.to_dense(), rtol=1e-12)

    def test_apply_solves_lu_system(self, rng):
        problem = poisson_2d(4, 1)
        pre = ILU0Preconditioner(problem.matrix)
        r = rng.standard_normal(4)
        z = pre.apply(r)
        np.testing.assert_allclose(
            problem.matrix.to_dense() @ z, r, rtol=1e-10
        )

    def test_factors_respect_sparsity_pattern(self, spd_small):
        pre = ILU0Preconditioner(spd_small)
        lower, upper = pre.factor_dense()
        dense = spd_small.to_dense()
        zero_pattern = dense == 0
        assert np.all(lower[np.tril(zero_pattern, -1)] == 0)
        assert np.all(upper[np.triu(zero_pattern)] == 0)

    def test_zero_pivot_flagged(self):
        matrix = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SolverBreakdownError, match="pivot"):
            ILU0Preconditioner(matrix)

    def test_rectangular_rejected(self):
        with pytest.raises(ConfigurationError):
            ILU0Preconditioner(CSRMatrix.from_dense(np.ones((2, 3))))


class TestPCGWithPreconditioners:
    def test_stronger_preconditioners_cut_iterations(self):
        problem = poisson_2d(20)
        iterations = {}
        for name in ("identity", "ssor", "ilu0"):
            solver = PreconditionedCGSolver(preconditioner=name)
            result = solver.solve(problem.matrix, problem.b)
            assert result.converged, name
            iterations[name] = result.iterations
        assert iterations["ilu0"] < iterations["identity"]
        assert iterations["ssor"] < iterations["identity"]

    def test_all_reach_same_solution(self):
        problem = poisson_2d(12)
        solutions = []
        for name in ("jacobi", "ssor", "ilu0"):
            result = PreconditionedCGSolver(preconditioner=name).solve(
                problem.matrix, problem.b
            )
            assert result.converged
            solutions.append(result.x)
        for x in solutions[1:]:
            np.testing.assert_allclose(x, solutions[0], atol=1e-3)

    def test_ilu0_setup_failure_reports_breakdown(self):
        matrix = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        result = PreconditionedCGSolver(preconditioner="ilu0").solve(
            matrix, np.ones(2, dtype=np.float32)
        )
        assert result.status.failed
