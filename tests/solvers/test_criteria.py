"""Tests for the Table I convergence-criteria registry."""

import numpy as np
import pytest

from repro.solvers.criteria import criteria_table, criterion_for
from repro.sparse import CSRMatrix


@pytest.fixture
def spd(spd_system):
    return spd_system[0]


@pytest.fixture
def sdd_nonsym():
    from repro.datasets.generators import sdd_matrix

    return sdd_matrix(64, 5.0, seed=2, symmetric=False)


class TestTable:
    def test_has_eleven_rows_like_the_paper(self):
        assert len(criteria_table()) == 11

    def test_paper_solver_rows_present(self):
        solvers = {c.solver for c in criteria_table()}
        assert {"jacobi", "cg", "bicgstab", "gauss_seidel", "sor", "gmres"} <= solvers

    def test_lookup(self):
        assert criterion_for("cg").description == "Symmetric, Positive Definite"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="no Table I entry"):
            criterion_for("nope")

    def test_documented_only_rows_return_none(self, spd):
        assert criterion_for("preconditioned_cg").satisfied_by(spd) is None
        assert criterion_for("concus_golub_widlund").satisfied_by(spd) is None


class TestPredicates:
    def test_jacobi_criterion(self, spd, sdd_nonsym):
        criterion = criterion_for("jacobi")
        assert criterion.satisfied_by(spd)  # SPD fixture is also SDD
        assert criterion.satisfied_by(sdd_nonsym)
        weak = CSRMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 1.0]]))
        assert not criterion.satisfied_by(weak)

    def test_cg_criterion(self, spd, sdd_nonsym):
        criterion = criterion_for("cg")
        assert criterion.satisfied_by(spd)
        assert not criterion.satisfied_by(sdd_nonsym)
        indefinite = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
        assert not criterion.satisfied_by(indefinite)

    def test_bicgstab_criterion(self, spd, sdd_nonsym):
        criterion = criterion_for("bicgstab")
        assert criterion.satisfied_by(sdd_nonsym)
        assert not criterion.satisfied_by(spd)

    def test_gmres_criterion(self, spd):
        criterion = criterion_for("gmres")
        assert criterion.satisfied_by(spd)
        negative = CSRMatrix.from_dense(-np.eye(8))
        assert not criterion.satisfied_by(negative)

    def test_criteria_predict_solver_outcomes_on_suite(self):
        """Where a Table I predicate holds, the solver must converge."""
        from repro.baselines import run_solver_portfolio
        from repro.datasets import load_problem

        for key in ("Wa", "Fe", "2C"):
            problem = load_problem(key)
            results = run_solver_portfolio(problem.matrix, problem.b)
            for solver in ("jacobi", "cg"):
                satisfied = criterion_for(solver).satisfied_by(problem.matrix)
                if satisfied:
                    assert results[solver].converged, (key, solver)
