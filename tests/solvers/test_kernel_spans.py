"""Kernel-level telemetry coverage inside the representative solvers.

Campaign telemetry must attribute wall-clock to the SpMV kernels
themselves, not just to whole units: BiCG-STAB wraps each ``matvec`` in
a ``kernel.spmv`` span and BiCG additionally wraps its transposed sweep
in ``kernel.rmatvec``.
"""

import numpy as np

from repro.datasets.generators import sdd_matrix
from repro.solvers import BiCGSolver, BiCGStabSolver
from repro.telemetry import Telemetry


def _problem(n=128, seed=5):
    matrix = sdd_matrix(n, 6.0, seed=seed)
    b = matrix.matvec(np.random.default_rng(seed).standard_normal(n))
    return matrix, b.astype(np.float32)


def test_bicgstab_records_spmv_kernel_spans():
    matrix, b = _problem()
    collector = Telemetry()
    with collector.activate():
        result = BiCGStabSolver().solve(matrix, b)
    spans = collector.spans["kernel.spmv"]
    # One initial residual SpMV plus at least one per completed iteration.
    assert spans.count >= 1 + result.iterations
    assert spans.total_ms >= 0.0


def test_bicg_records_rmatvec_kernel_spans():
    matrix, b = _problem()
    collector = Telemetry()
    with collector.activate():
        result = BiCGSolver().solve(matrix, b)
    spmv = collector.spans["kernel.spmv"]
    rmatvec = collector.spans["kernel.rmatvec"]
    # One A-sweep and one A.T-sweep per loop pass (the monitor counts the
    # initial residual check as an iteration, hence the -1).
    assert spmv.count == rmatvec.count == result.iterations - 1
    assert rmatvec.count >= 1


def test_solvers_silent_without_collector():
    matrix, b = _problem()
    result = BiCGStabSolver().solve(matrix, b)
    assert result.iterations >= 0
