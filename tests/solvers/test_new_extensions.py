"""Tests for the BiCG / Conjugate Residual / PCG extension solvers."""

import numpy as np
import pytest

from repro.datasets.generators import sdd_matrix, spd_clique_matrix
from repro.solvers import (
    BiCGSolver,
    BiCGStabSolver,
    ConjugateGradientSolver,
    ConjugateResidualSolver,
    PreconditionedCGSolver,
    SolveStatus,
)
from repro.sparse import COOMatrix, CSRMatrix


class TestBiCG:
    def test_solves_nonsymmetric(self, rng):
        matrix = sdd_matrix(256, 6.0, seed=31, symmetric=False)
        x_true = rng.standard_normal(256)
        b = matrix.matvec(x_true).astype(np.float32)
        result = BiCGSolver().solve(matrix, b)
        assert result.converged
        assert np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true) < 1e-3

    def test_reduces_to_cg_iterations_on_spd(self, spd_system):
        """On symmetric A with r0* = r0, BiCG is mathematically CG."""
        matrix, b, _ = spd_system
        bicg = BiCGSolver(dtype=np.float64).solve(matrix, b)
        cg = ConjugateGradientSolver(dtype=np.float64).solve(matrix, b)
        assert bicg.converged
        assert abs(bicg.iterations - cg.iterations) <= 1

    def test_uses_two_spmv_per_iteration(self, spd_system):
        matrix, b, _ = spd_system
        result = BiCGSolver().solve(matrix, b)
        loop_spmv = result.ops.spmv_count() - 1
        assert loop_spmv == pytest.approx(2 * result.iterations, abs=3)

    def test_stabilization_pays_off_on_erratic_system(self, rng):
        """BiCG-STAB's residual trajectory dominates raw BiCG's peak."""
        matrix = sdd_matrix(512, 8.0, seed=32, symmetric=False, dominance=1.05)
        b = matrix.matvec(rng.standard_normal(512)).astype(np.float32)
        bicg = BiCGSolver().solve(matrix, b)
        stab = BiCGStabSolver().solve(matrix, b)
        assert stab.converged
        if bicg.converged:
            assert max(stab.residual_history) <= max(bicg.residual_history) * 10


class TestConjugateResidual:
    def test_solves_spd(self, spd_system):
        matrix, b, x_true = spd_system
        result = ConjugateResidualSolver().solve(matrix, b)
        assert result.converged
        assert np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true) < 1e-3

    def test_residual_monotone_nonincreasing(self, spd_system):
        """CR minimizes ‖r‖2 over the Krylov space: monotone residuals."""
        matrix, b, _ = spd_system
        result = ConjugateResidualSolver(dtype=np.float64).solve(matrix, b)
        history = result.residual_history
        assert np.all(history[1:] <= history[:-1] * (1 + 1e-10))

    def test_one_spmv_per_iteration(self, spd_system):
        matrix, b, _ = spd_system
        result = ConjugateResidualSolver().solve(matrix, b)
        loop_spmv = result.ops.spmv_count() - 2  # init does r0 and A r0
        assert loop_spmv == pytest.approx(result.iterations, abs=2)

    def test_handles_negative_definite(self, rng):
        """Symmetric definite of either sign is fine for CR (Hermitian
        criterion), unlike CG which needs positive definiteness."""
        matrix = spd_clique_matrix(128, 5.0, seed=33)
        negated = CSRMatrix(
            matrix.shape, matrix.indptr, matrix.indices, -matrix.data
        )
        b = negated.matvec(rng.standard_normal(128)).astype(np.float32)
        result = ConjugateResidualSolver().solve(negated, b)
        assert result.converged


class TestPCG:
    def test_solves_spd(self, spd_system):
        matrix, b, x_true = spd_system
        result = PreconditionedCGSolver().solve(matrix, b)
        assert result.converged
        assert np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true) < 1e-3

    def test_beats_cg_on_badly_scaled_spd(self, rng):
        """Diagonal preconditioning neutralizes row/column scaling."""
        base = spd_clique_matrix(512, 6.0, seed=34)
        scale = np.exp(rng.normal(0.0, 1.5, 512))
        coo = base.to_coo()
        scaled = COOMatrix(
            base.shape, coo.rows, coo.cols,
            coo.data * scale[coo.rows] * scale[coo.cols],
        ).to_csr()
        b = scaled.matvec(rng.standard_normal(512)).astype(np.float32)
        cg = ConjugateGradientSolver().solve(scaled, b)
        pcg = PreconditionedCGSolver().solve(scaled, b)
        assert pcg.converged
        assert pcg.iterations < cg.iterations

    def test_nonpositive_diagonal_breaks_down(self):
        dense = np.array([[1.0, 0.0], [0.0, -2.0]])
        result = PreconditionedCGSolver().solve(
            CSRMatrix.from_dense(dense), np.ones(2, dtype=np.float32)
        )
        assert result.status is SolveStatus.BREAKDOWN

    def test_identity_preconditioner_matches_cg(self, spd_system):
        """With a unit diagonal, PCG's iterates coincide with CG's."""
        matrix, b, _ = spd_system
        diag = matrix.diagonal()
        inv_sqrt = 1.0 / np.sqrt(diag)
        coo = matrix.to_coo()
        normalized = COOMatrix(
            matrix.shape, coo.rows, coo.cols,
            coo.data * inv_sqrt[coo.rows] * inv_sqrt[coo.cols],
        ).to_csr()
        b_scaled = (b * inv_sqrt).astype(np.float32)
        pcg = PreconditionedCGSolver(dtype=np.float64).solve(normalized, b_scaled)
        cg = ConjugateGradientSolver(dtype=np.float64).solve(normalized, b_scaled)
        assert pcg.converged and cg.converged
        assert abs(pcg.iterations - cg.iterations) <= 1
