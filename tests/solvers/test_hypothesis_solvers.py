"""Property-based tests on the solver layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import sdd_matrix
from repro.solvers import SolveStatus, make_solver
from repro.solvers.base import OpCounter
from repro.solvers.monitor import ConvergenceMonitor


@given(
    st.integers(16, 96),           # n
    st.floats(3.0, 10.0),          # mean nnz
    st.integers(0, 2**31 - 1),     # seed
    st.sampled_from(["jacobi", "bicgstab", "srj", "multicolor_gs"]),
)
@settings(max_examples=25, deadline=None)
def test_guaranteed_solvers_converge_on_random_sdd(n, mean_nnz, seed, name):
    """Every SDD matrix satisfies the Table I criteria of these methods."""
    matrix = sdd_matrix(n, min(mean_nnz, n / 2), seed=seed)
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(n)
    b = matrix.matvec(x_true).astype(np.float32)
    solver = make_solver(name, max_iterations=2000)
    result = solver.solve(matrix, b)
    assert result.converged, (name, n, seed, result.status)
    error = np.linalg.norm(result.x - x_true) / max(
        np.linalg.norm(x_true), 1e-12
    )
    assert error < 1e-2


@given(
    st.integers(16, 96),
    st.floats(3.0, 10.0),
    st.integers(0, 2**31 - 1),
    st.sampled_from(["cg", "pcg", "conjugate_residual", "chebyshev", "gmres"]),
)
@settings(max_examples=25, deadline=None)
def test_spd_solvers_converge_on_random_spd(n, mean_nnz, seed, name):
    matrix = sdd_matrix(n, min(mean_nnz, n / 2), seed=seed, symmetric=True)
    rng = np.random.default_rng(seed)
    b = matrix.matvec(rng.standard_normal(n)).astype(np.float32)
    result = make_solver(name, max_iterations=2000).solve(matrix, b)
    assert result.converged, (name, n, seed, result.status)


@given(
    st.lists(
        st.floats(1e-12, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_monitor_always_terminates_with_valid_status(residuals):
    """Any residual sequence drives the monitor to exactly one verdict."""
    monitor = ConvergenceMonitor(
        b_norm=1.0, tolerance=1e-5, max_iterations=100, setup_iterations=10
    )
    verdict = None
    for value in residuals:
        verdict = monitor.update(value)
        if verdict is not None:
            break
    if verdict is not None:
        assert isinstance(verdict, SolveStatus)
        assert monitor.iterations <= 100
    else:
        assert monitor.iterations < 100


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["spmv", "dot", "axpy", "scale", "vadd", "norm"]),
            st.integers(1, 10_000),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_opcounter_merge_is_componentwise_sum(events):
    left, right, merged_ref = OpCounter(), OpCounter(), OpCounter()
    for index, (kind, size) in enumerate(events):
        target = left if index % 2 == 0 else right
        target.record(kind, size)
        merged_ref.record(kind, size)
    merged = left.merged_with(right)
    assert merged.counts == merged_ref.counts
    assert merged.sizes == merged_ref.sizes
    assert merged.spmv_count() == merged_ref.spmv_count()
    assert merged.dense_element_total() == merged_ref.dense_element_total()
