"""CG-specific tests (paper Algorithm 2)."""

import numpy as np

from repro.solvers import ConjugateGradientSolver, SolveStatus
from repro.sparse import CSRMatrix


class TestCG:
    def test_exact_in_n_iterations(self):
        """On an SPD n x n system, exact-arithmetic CG finishes in <= n steps."""
        dense = np.array(
            [[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 5.0]]
        )
        solver = ConjugateGradientSolver(dtype=np.float64, tolerance=1e-12)
        result = solver.solve(CSRMatrix.from_dense(dense), np.array([1.0, 2.0, 3.0]))
        assert result.converged
        assert result.iterations <= 4  # n + initial residual record

    def test_iteration_count_scales_with_sqrt_condition(self, rng):
        """CG iterations grow roughly with sqrt(kappa)."""
        n = 200
        iteration_counts = []
        for kappa in (10.0, 1000.0):
            eigenvalues = np.linspace(1.0, kappa, n)
            # diagonal SPD matrix: condition number exactly kappa
            matrix = CSRMatrix.from_dense(np.diag(eigenvalues))
            b = rng.standard_normal(n).astype(np.float32)
            result = ConjugateGradientSolver().solve(matrix, b)
            assert result.converged
            iteration_counts.append(result.iterations)
        ratio = iteration_counts[1] / iteration_counts[0]
        assert 3.0 < ratio  # ~sqrt(100) = 10 in theory; allow slack

    def test_residual_monotone_for_spd(self, spd_system):
        matrix, b, _ = spd_system
        result = ConjugateGradientSolver(dtype=np.float64).solve(matrix, b)
        history = result.residual_history
        # 2-norm residual of CG is not strictly monotone but must trend
        # down; check a loose monotonicity (no growth above 10x).
        assert np.all(history[1:] <= history[:-1] * 10)

    def test_fails_on_indefinite(self):
        """Symmetric with an origin-straddling coupled spectrum: CG's
        A-norm optimality argument collapses and the iteration stalls."""
        from repro.datasets.generators import balanced_indefinite_matrix

        matrix = balanced_indefinite_matrix(
            512, seed=21, coupling=3.0, magnitude_spread=1.0
        )
        rng = np.random.default_rng(0)
        b = matrix.matvec(rng.standard_normal(512)).astype(np.float32)
        solver = ConjugateGradientSolver(max_iterations=500, setup_iterations=25)
        result = solver.solve(matrix, b)
        assert result.status.failed

    def test_nonsymmetric_typically_fails(self, rng):
        from repro.datasets.generators import sdd_matrix

        matrix = sdd_matrix(256, 8.0, seed=5, symmetric=False, dominance=1.05)
        b = rng.standard_normal(256).astype(np.float32)
        result = ConjugateGradientSolver(max_iterations=500).solve(matrix, b)
        assert result.status.failed

    def test_breakdown_on_zero_curvature(self):
        """p.T A p == 0 exactly -> declared breakdown, no NaN leak."""
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        # r0 = p0 = b = e0, so p.T A p = e0.T e1 = 0 at the first step.
        b = np.array([1.0, 0.0], dtype=np.float32)
        result = ConjugateGradientSolver().solve(CSRMatrix.from_dense(dense), b)
        assert result.status is SolveStatus.BREAKDOWN

    def test_identity_converges_in_one_step(self):
        matrix = CSRMatrix.identity(50, dtype=np.float32)
        b = np.arange(50, dtype=np.float32)
        result = ConjugateGradientSolver().solve(matrix, b)
        assert result.converged
        assert result.iterations <= 2
        np.testing.assert_allclose(result.x, b, rtol=1e-5)
