"""Tests for graph coloring and multicolor Gauss-Seidel."""

import numpy as np
import pytest

from repro.datasets import poisson_2d
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError
from repro.solvers import GaussSeidelSolver, MulticolorGaussSeidelSolver
from repro.sparse import CSRMatrix
from repro.sparse.coloring import (
    color_classes,
    greedy_coloring,
    verify_coloring,
)


class TestColoring:
    def test_poisson_gets_two_colors(self):
        """The 5-point Laplacian is bipartite: red-black is optimal."""
        problem = poisson_2d(10)
        colors = greedy_coloring(problem.matrix)
        assert colors.max() + 1 == 2
        assert verify_coloring(problem.matrix, colors)

    def test_random_matrix_coloring_valid(self):
        matrix = sdd_matrix(256, 6.0, seed=3)
        colors = greedy_coloring(matrix)
        assert verify_coloring(matrix, colors)

    def test_color_count_bounded_by_degree(self):
        matrix = sdd_matrix(256, 6.0, seed=4)
        colors = greedy_coloring(matrix)
        # Symmetrized degree bound: deg(A) + deg(A.T) + 1.
        max_degree = int(
            (matrix.row_lengths() + matrix.transpose().row_lengths()).max()
        )
        assert colors.max() + 1 <= max_degree + 1

    def test_diagonal_matrix_one_color(self):
        matrix = CSRMatrix.identity(8)
        colors = greedy_coloring(matrix)
        assert colors.max() == 0

    def test_classes_partition_rows(self):
        matrix = sdd_matrix(128, 5.0, seed=5)
        classes = color_classes(greedy_coloring(matrix))
        combined = np.sort(np.concatenate(classes))
        np.testing.assert_array_equal(combined, np.arange(128))

    def test_rectangular_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_coloring(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_empty_matrix(self):
        empty = CSRMatrix((0, 0), [0], [], [])
        assert len(greedy_coloring(empty)) == 0
        assert color_classes(np.array([])) == []


class TestMulticolorGS:
    def test_converges_like_plain_gs_on_poisson(self):
        problem = poisson_2d(16)
        multicolor = MulticolorGaussSeidelSolver().solve(
            problem.matrix, problem.b
        )
        plain = GaussSeidelSolver().solve(problem.matrix, problem.b)
        assert multicolor.converged and plain.converged
        assert multicolor.iterations < plain.iterations * 2

    def test_solution_accuracy(self):
        problem = poisson_2d(14)
        result = MulticolorGaussSeidelSolver().solve(problem.matrix, problem.b)
        assert result.converged
        assert problem.relative_error(result.x) < 1e-2

    def test_zero_diagonal_breaks_down(self):
        dense = np.array([[0.0, 1.0], [1.0, 2.0]])
        result = MulticolorGaussSeidelSolver().solve(
            CSRMatrix.from_dense(dense), np.ones(2, dtype=np.float32)
        )
        assert result.status.failed

    def test_spmv_passes_scale_with_colors(self):
        """Each sweep costs (colors + 1) SpMV-equivalent passes."""
        problem = poisson_2d(12)
        result = MulticolorGaussSeidelSolver().solve(problem.matrix, problem.b)
        passes_per_sweep = result.ops.spmv_count() / result.iterations
        assert 2.5 < passes_per_sweep < 3.5  # 2 colors + residual check

    def test_matches_red_black_hand_computation(self):
        """On a 1-D chain, one red step then one black step must equal
        the hand-computed red-black update."""
        problem = poisson_2d(4, 1)  # 1-D chain of 4 nodes
        b = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        solver = MulticolorGaussSeidelSolver(max_iterations=1, dtype=np.float64)
        result = solver.solve(problem.matrix, b)
        # chain: colors alternate (greedy gives 0,1,0,1); diag = 2
        x = np.zeros(4)
        reds, blacks = [0, 2], [1, 3]
        dense = problem.matrix.to_dense()
        for group in (reds, blacks):
            coupled = (dense - np.diag(np.diag(dense))) @ x
            for i in group:
                x[i] = (b[i] - coupled[i]) / dense[i, i]
        np.testing.assert_allclose(result.x, x, rtol=1e-12)
