"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListDatasets:
    def test_prints_all_rows(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "2cubes_sphere" in out
        assert out.count("\n") >= 26  # header + 25 rows


class TestSolve:
    def test_dataset_solve_succeeds(self, capsys):
        assert main(["solve", "--dataset", "Wa"]) == 0
        out = capsys.readouterr().out
        assert "solver sequence" in out
        assert "converged" in out

    def test_poisson_solve(self, capsys):
        assert main(["solve", "--poisson", "12"]) == 0
        out = capsys.readouterr().out
        assert "poisson_2d_12x12" in out

    def test_fixed_solver_bypass(self, capsys):
        assert main(["solve", "--poisson", "10", "--solver", "cg"]) == 0
        out = capsys.readouterr().out
        assert "fixed solver 'cg'" in out

    def test_fixed_solver_failure_exit_code(self, capsys):
        # Jacobi on the 2C class diverges: nonzero exit.
        assert main(["solve", "--dataset", "2C", "--solver", "jacobi"]) == 1

    def test_config_flags_forwarded(self, capsys):
        assert main([
            "solve", "--poisson", "10",
            "--sampling-rate", "4", "--r-opt", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 sets" in out

    def test_requires_a_source(self):
        with pytest.raises(SystemExit):
            main(["solve"])

    def test_config_file(self, tmp_path, capsys):
        import json

        from repro import AcamarConfig

        path = tmp_path / "config.json"
        path.write_text(json.dumps(AcamarConfig(r_opt=0).to_dict()))
        assert main([
            "solve", "--poisson", "10", "--config", str(path),
            "--r-opt", "0",
        ]) == 0
        assert "sets" in capsys.readouterr().out


class TestExport:
    def test_export_command(self, tmp_path, capsys):
        target = tmp_path / "exports"
        assert main(["export", str(target), "--keys", "2C,Wi"]) == 0
        out = capsys.readouterr().out
        assert "wrote 34 files" in out
        assert (target / "table2.csv").exists()


class TestExperiments:
    def test_single_experiment_with_subset(self, capsys):
        assert main(["experiment", "fig2", "--keys", "2C,Wi"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "2C" in out and "Wi" in out

    def test_chart_flag(self, capsys):
        assert main([
            "experiment", "fig2", "--keys", "2C,Wi", "--chart", "URB=64",
        ]) == 0
        out = capsys.readouterr().out
        assert "-- URB=64 --" in out
        assert "|#" in out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestCampaign:
    def test_campaign_with_keys(self, capsys):
        assert main(["campaign", "Wa", "Li"]) == 0
        out = capsys.readouterr().out
        assert "systems solved        : 2" in out
        assert "convergence rate      : 100%" in out

    def test_campaign_all_flag(self, capsys):
        assert main(["campaign", "--all", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "systems solved        : 25" in out

    def test_campaign_without_sources_errors(self, capsys):
        assert main(["campaign"]) == 2
        assert "no sources" in capsys.readouterr().err

    def test_campaign_unknown_source_errors(self, capsys):
        assert main(["campaign", "bogus-key"]) == 2
        assert "bogus-key" in capsys.readouterr().err

    def test_campaign_writes_csv_and_telemetry(self, tmp_path, capsys):
        import json

        csv_path = tmp_path / "campaign.csv"
        telemetry_path = tmp_path / "telemetry.json"
        assert main([
            "campaign", "Wa", "--csv", str(csv_path),
            "--telemetry", str(telemetry_path),
        ]) == 0
        assert csv_path.exists()
        document = json.loads(telemetry_path.read_text())
        assert document["schema_version"] == 1
        assert document["campaign"]["problems"] == 1
        assert "stages" in document


class TestSolveExitContract:
    """Pins the documented exit codes: 0 converged, 1 not, 2 unresolvable."""

    def test_acamar_path_nonconvergence_is_one(self, capsys):
        assert main([
            "solve", "--dataset", "2C", "--max-iterations", "3",
        ]) == 1
        assert "max_iterations" in capsys.readouterr().out

    def test_unknown_dataset_is_two(self, capsys):
        assert main(["solve", "--dataset", "bogus-key"]) == 2
        err = capsys.readouterr().err
        assert "bogus-key" in err
        assert "solve:" in err

    def test_convergence_is_zero(self):
        assert main(["solve", "--dataset", "Wa"]) == 0


class TestServe:
    def test_loadtest_summary_and_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        assert main([
            "loadtest", "--seed", "0", "--duration", "0.5",
            "--rate", "40", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "requests generated" in printed
        assert "cache hit rate" in printed
        document = json.loads(out.read_text())
        assert document["schema_version"] == 1
        assert document["requests"]["unaccounted"] == 0

    def test_loadtest_reports_are_deterministic(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert main([
                "loadtest", "--seed", "0", "--duration", "0.5",
                "--rate", "40", "--out", str(path),
            ]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_serve_replays_saved_request_log(self, tmp_path):
        req = tmp_path / "req.jsonl"
        live = tmp_path / "live.jsonl"
        replay = tmp_path / "replay.jsonl"
        assert main([
            "serve", "--seed", "2", "--duration", "0.5", "--rate", "40",
            "--save-requests", str(req), "--responses", str(live),
        ]) == 0
        assert main([
            "serve", "--requests", str(req), "--responses", str(replay),
        ]) == 0
        assert live.read_bytes() == replay.read_bytes()

    def test_no_cache_flag_disables_cache(self, tmp_path, capsys):
        assert main([
            "loadtest", "--seed", "0", "--duration", "0.5",
            "--rate", "40", "--no-cache",
        ]) == 0
        assert "cache hit rate        : 0.0%" in capsys.readouterr().out

    def test_telemetry_export_includes_latency_distribution(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "telemetry.json"
        assert main([
            "loadtest", "--seed", "0", "--duration", "0.5",
            "--rate", "40", "--telemetry", str(path),
        ]) == 0
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert "serve.latency_ms" in document["distributions"]
        assert document["counters"]["serve.requests"] > 0


class TestClusterLoadtest:
    def test_cluster_summary_and_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "cluster.json"
        assert main([
            "loadtest", "--cluster", "--seed", "0", "--duration", "2",
            "--rate", "100", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "loadtest --cluster" in printed
        assert "fleets peak / final" in printed
        document = json.loads(out.read_text())
        assert document["schema_version"] == 1
        assert document["requests"]["unaccounted"] == 0
        assert document["cluster"]["affinity_routing"] is True

    def test_cluster_reports_byte_identical(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert main([
                "loadtest", "--cluster", "--seed", "0", "--duration", "2",
                "--rate", "100", "--out", str(path),
            ]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_worker_count_does_not_change_report(self, tmp_path, capsys):
        one = tmp_path / "w1.json"
        four = tmp_path / "w4.json"
        for path, workers in ((one, "1"), (four, "4")):
            assert main([
                "loadtest", "--cluster", "--seed", "0", "--duration", "2",
                "--rate", "100", "--workers", workers, "--out", str(path),
            ]) == 0
        capsys.readouterr()
        assert one.read_bytes() == four.read_bytes()

    def test_cluster_flags_forwarded(self, tmp_path, capsys):
        import json

        out = tmp_path / "cluster.json"
        assert main([
            "loadtest", "--cluster", "--seed", "0", "--duration", "2",
            "--rate", "100", "--fleets", "3", "--max-fleets", "5",
            "--no-autoscale", "--no-affinity", "--vnodes", "16",
            "--out", str(out),
        ]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        cluster = document["cluster"]
        assert cluster["initial_fleets"] == 3
        assert cluster["max_fleets"] == 5
        assert cluster["autoscale"] is False
        assert cluster["affinity_routing"] is False
        assert cluster["vnodes"] == 16
        assert document["fleets"]["peak"] == 3

    def test_invalid_cluster_config_exits_two(self, capsys):
        assert main([
            "loadtest", "--cluster", "--duration", "2", "--rate", "100",
            "--fleets", "9", "--max-fleets", "4",
        ]) == 2
        assert "loadtest:" in capsys.readouterr().err
