"""Tests for performance counters and roofline analysis."""

import pytest

from repro import Acamar
from repro.datasets import load_problem, poisson_2d
from repro.fpga import (
    ALVEO_U55C,
    collect_counters,
    fpga_roofline,
    gpu_roofline,
    spmv_arithmetic_intensity,
)
from repro.gpu import GTX_1650_SUPER


@pytest.fixture(scope="module")
def solved():
    problem = poisson_2d(24)
    result = Acamar().solve(problem.matrix, problem.b)
    return problem, result


class TestCounters:
    def test_snapshot_consistency(self, solved):
        problem, result = solved
        counters = collect_counters(problem.matrix, result)
        assert counters.solver_sequence == result.solver_sequence
        assert counters.iterations == result.final.iterations
        assert 0.0 < counters.spmv_occupancy <= 1.0
        assert counters.compute_seconds > 0
        assert counters.gflops > 0

    def test_busy_cycles_match_work(self, solved):
        """Busy MAC-cycles = nnz swept x sweeps (CG sweeps full A)."""
        problem, result = solved
        counters = collect_counters(problem.matrix, result)
        expected = problem.matrix.nnz * counters.spmv_sweeps
        assert counters.spmv_busy_mac_cycles == expected

    def test_swap_counters_on_multi_attempt_solve(self):
        problem = load_problem("Fe")
        result = Acamar().solve(problem.matrix, problem.b)
        counters = collect_counters(problem.matrix, result)
        assert counters.solver_swaps == result.solver_reconfigurations
        if counters.solver_swaps:
            assert counters.solver_swap_seconds > 0

    def test_rendered_lines(self, solved):
        problem, result = solved
        lines = collect_counters(problem.matrix, result).to_lines()
        assert len(lines) == 11
        assert any("occupancy" in line for line in lines)


class TestRoofline:
    def test_spmv_intensity_is_sub_flop_per_byte(self, solved):
        problem, _ = solved
        intensity = spmv_arithmetic_intensity(problem.matrix, 12.0, 16.0)
        assert 0.05 < intensity < 0.25

    def test_gpu_is_memory_bound(self, solved):
        problem, _ = solved
        point = gpu_roofline(problem.matrix)
        assert point.memory_bound
        assert point.attainable_fraction < 0.02
        assert point.arithmetic_intensity < point.ridge_point

    def test_fpga_small_config_is_compute_bound(self, solved):
        """A right-sized unit sits left of its own ridge point? No — it
        sits *compute*-bound: its configured peak is below what the HBM
        could feed, so the unit is the bottleneck (which means the MACs
        can stay busy)."""
        problem, _ = solved
        point = fpga_roofline(problem.matrix, provisioned_macs=8)
        assert not point.memory_bound
        assert point.attainable_fraction == pytest.approx(1.0)

    def test_fpga_oversized_config_turns_memory_bound(self, solved):
        problem, _ = solved
        huge = fpga_roofline(problem.matrix, provisioned_macs=4096)
        assert huge.memory_bound
        assert huge.attainable_fraction < 1.0

    def test_ridge_points_ordered(self, solved):
        """The GPU's enormous peak pushes its ridge point far beyond
        SpMV's intensity; a matched FPGA configuration's ridge point sits
        below it."""
        problem, _ = solved
        gpu_point = gpu_roofline(problem.matrix, GTX_1650_SUPER)
        fpga_point = fpga_roofline(problem.matrix, 8, ALVEO_U55C)
        assert gpu_point.ridge_point > gpu_point.arithmetic_intensity
        assert fpga_point.ridge_point < gpu_point.ridge_point
