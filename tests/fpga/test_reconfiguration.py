"""Tests for the ICAP partial-reconfiguration timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.device import ALVEO_U55C
from repro.fpga.reconfiguration import (
    SOLVER_REGION_BYTES,
    SPMV_REGION_BASE_BYTES,
    SPMV_REGION_BYTES_PER_MAC,
    ReconfigurationModel,
    spmv_bitstream_bytes,
)


@pytest.fixture
def model():
    return ReconfigurationModel(ALVEO_U55C)


class TestBitstreamSizes:
    def test_affine_in_unroll(self):
        assert spmv_bitstream_bytes(1) == (
            SPMV_REGION_BASE_BYTES + SPMV_REGION_BYTES_PER_MAC
        )
        assert spmv_bitstream_bytes(8) - spmv_bitstream_bytes(4) == (
            4 * SPMV_REGION_BYTES_PER_MAC
        )

    def test_invalid_unroll(self):
        with pytest.raises(ConfigurationError):
            spmv_bitstream_bytes(0)


class TestTiming:
    def test_transfer_at_icap_bandwidth(self, model):
        # 6.4 Gb/s = 0.8 GB/s: 0.8 MB takes 1 ms.
        seconds = model.transfer_seconds(800_000)
        assert seconds == pytest.approx(1e-3)

    def test_spmv_event_in_microsecond_range(self, model):
        event = model.spmv_event_seconds(8)
        assert 1e-5 < event < 1e-3

    def test_solver_swap_slower_than_spmv_event(self, model):
        assert model.solver_swap_seconds() > model.spmv_event_seconds(64)
        expected = 8.0 * SOLVER_REGION_BYTES / ALVEO_U55C.icap_bandwidth_bps
        assert model.solver_swap_seconds() == pytest.approx(expected)

    def test_plan_overhead_sums_events(self, model):
        total = model.plan_overhead_seconds([4, 8, 4])
        expected = (
            model.spmv_event_seconds(4) * 2 + model.spmv_event_seconds(8)
        )
        assert total == pytest.approx(expected)

    def test_empty_plan_is_free(self, model):
        assert model.plan_overhead_seconds([]) == 0.0
