"""Tests for the FPGA kernel cycle models."""

import numpy as np
import pytest

from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.kernels import EMPTY_SWEEP, SweepReport, dense_kernel, spmv_sweep


@pytest.fixture
def device():
    return ALVEO_U55C


class TestSpMVSweep:
    def test_cycle_count_exact(self, device):
        lengths = np.array([8, 4, 12])
        report = spmv_sweep(lengths, 4, device)
        # ceil(8/4) + ceil(4/4) + ceil(12/4) = 2 + 1 + 3 = 6 slots + fill
        assert report.cycles == 6 + device.pipeline_fill_cycles

    def test_busy_and_provisioned(self, device):
        lengths = np.array([5, 3])
        report = spmv_sweep(lengths, 4, device)
        assert report.busy_mac_cycles == 8
        assert report.provisioned_mac_cycles == (2 + 1) * 4
        assert report.flops == 16.0

    def test_empty_row_occupies_one_slot(self, device):
        report = spmv_sweep(np.array([0, 4]), 4, device)
        assert report.cycles == 2 + device.pipeline_fill_cycles
        assert report.busy_mac_cycles == 4

    def test_per_row_unroll(self, device):
        lengths = np.array([8, 8])
        report = spmv_sweep(lengths, np.array([8, 2]), device)
        # 1 slot at U=8 + 4 slots at U=2
        assert report.cycles == 5 + device.pipeline_fill_cycles
        assert report.provisioned_mac_cycles == 8 + 8

    def test_larger_unroll_never_slower(self, device):
        lengths = np.array([7, 13, 2, 30, 1])
        cycles = [spmv_sweep(lengths, u, device).cycles for u in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(cycles, cycles[1:]))

    def test_unroll_one_cycles_equal_nnz(self, device):
        lengths = np.array([3, 4, 5])
        report = spmv_sweep(lengths, 1, device)
        assert report.cycles == 12 + device.pipeline_fill_cycles
        assert report.occupancy == 1.0


class TestDenseKernel:
    def test_streaming_cycles(self, device):
        report = dense_kernel("axpy", 160, device)
        assert report.cycles == 10 + device.pipeline_fill_cycles
        assert report.flops == 320.0

    def test_reduction_tail(self, device):
        dot = dense_kernel("dot", 160, device)
        axpy = dense_kernel("axpy", 160, device)
        assert dot.cycles > axpy.cycles  # adder-tree drain

    def test_flops_per_kind(self, device):
        assert dense_kernel("scale", 100, device).flops == 100.0
        assert dense_kernel("vadd", 100, device).flops == 100.0
        assert dense_kernel("norm", 100, device).flops == 200.0

    def test_unknown_kind(self, device):
        with pytest.raises(KeyError):
            dense_kernel("conv2d", 10, device)

    def test_minimum_one_slot(self, device):
        report = dense_kernel("axpy", 1, device)
        assert report.cycles >= 1 + device.pipeline_fill_cycles


class TestSweepReport:
    def test_scaled(self):
        report = SweepReport(10.0, 5.0, 8.0, 12.0)
        tripled = report.scaled(3)
        assert tripled.cycles == 30.0
        assert tripled.busy_mac_cycles == 15.0
        assert tripled.flops == 36.0

    def test_combine(self):
        a = SweepReport(10.0, 5.0, 8.0, 12.0)
        b = SweepReport(1.0, 2.0, 3.0, 4.0)
        combo = SweepReport.combine([a, b])
        assert combo.cycles == 11.0
        assert combo.provisioned_mac_cycles == 11.0

    def test_occupancy(self):
        assert SweepReport(1, 3.0, 4.0, 0).occupancy == pytest.approx(0.75)
        assert EMPTY_SWEEP.occupancy == 1.0


class TestDevice:
    def test_defaults_are_consistent(self, device):
        assert device.max_macs == device.dsp_total // device.dsp_per_mac
        assert device.cycles_to_seconds(device.clock_hz) == pytest.approx(1.0)
        assert device.mac_peak_flops(4) == pytest.approx(8 * device.clock_hz)

    def test_area_scales_with_unroll(self, device):
        assert device.spmv_region_area_mm2(8) == pytest.approx(
            2 * device.spmv_region_area_mm2(4)
        )

    def test_invalid_configs_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FPGADevice(clock_hz=0)
        with pytest.raises(ConfigurationError):
            FPGADevice(dsp_per_mac=0)
        with pytest.raises(ConfigurationError):
            FPGADevice(icap_bandwidth_bps=-1)
        with pytest.raises(ConfigurationError):
            FPGADevice(dense_unroll=0)
