"""Property-based tests on the FPGA cycle models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fpga import ALVEO_U55C, spmv_sweep
from repro.fpga.utilization import (
    mean_underutilization,
    occupancy_underutilization,
    row_underutilization,
)
from repro.sparse.ell import padded_slots_for_unroll

row_length_arrays = arrays(
    np.int64,
    st.integers(1, 200),
    elements=st.integers(0, 500),
)


@given(row_length_arrays, st.integers(1, 128))
@settings(max_examples=120, deadline=None)
def test_sweep_accounting_invariants(lengths, unroll):
    report = spmv_sweep(lengths, unroll, ALVEO_U55C)
    assert report.busy_mac_cycles == lengths.sum()
    assert report.provisioned_mac_cycles >= report.busy_mac_cycles
    assert report.cycles > 0
    assert report.flops == 2.0 * lengths.sum()
    # Provisioned slots equal the padded block-ELL storage.
    assert report.provisioned_mac_cycles == padded_slots_for_unroll(
        lengths, unroll
    )


@given(row_length_arrays)
@settings(max_examples=80, deadline=None)
def test_sweep_cycles_monotone_in_unroll(lengths):
    cycles = [
        spmv_sweep(lengths, u, ALVEO_U55C).cycles for u in (1, 2, 4, 8, 16)
    ]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


@given(row_length_arrays, st.integers(1, 128))
@settings(max_examples=120, deadline=None)
def test_underutilization_metrics_bounded(lengths, unroll):
    eq5 = mean_underutilization(lengths, unroll)
    occupancy = occupancy_underutilization(lengths, unroll)
    assert 0.0 <= eq5 <= 1.0
    assert 0.0 <= occupancy < 1.0 or lengths.sum() == 0
    per_row = row_underutilization(lengths, unroll)
    assert np.all((0.0 <= per_row) & (per_row <= 1.0))


@given(row_length_arrays)
@settings(max_examples=80, deadline=None)
def test_matched_unroll_minimizes_occupancy_waste(lengths):
    """Choosing U = each row's own nnz wastes nothing (beyond empties)."""
    per_row_unroll = np.maximum(lengths, 1)
    waste = occupancy_underutilization(lengths, per_row_unroll)
    if np.all(lengths > 0):
        assert waste == 0.0
