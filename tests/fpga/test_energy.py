"""Tests for the energy model extension."""

import pytest

from repro import Acamar
from repro.datasets import load_problem, poisson_2d
from repro.fpga import PerformanceModel
from repro.fpga.energy import (
    CSR_BYTES_PER_NNZ,
    HBM_ENERGY_PER_BYTE_J,
    ICAP_POWER_W,
    LEAKAGE_W_PER_MM2,
    MAC_ENERGY_J,
    EnergyModel,
    EnergyReport,
    FleetEnergyReport,
)


@pytest.fixture
def solved():
    problem = poisson_2d(24)
    result = Acamar().solve(problem.matrix, problem.b)
    model = PerformanceModel()
    latency = model.acamar_latency(problem.matrix, result)
    area = model.acamar_spmv_area_mm2(problem.matrix, result.plan)
    return problem, result, model, latency, area


class TestEnergyReport:
    def test_total_sums_components(self):
        report = EnergyReport(1.0, 2.0, 3.0, 4.0)
        assert report.total_j == 10.0

    def test_edp(self):
        report = EnergyReport(1.0, 0.0, 0.0, 0.0)
        assert report.energy_delay_product(2.0) == 2.0


class TestEnergyModel:
    def test_components_positive_for_real_solve(self, solved):
        problem, result, model, latency, area = solved
        energy = EnergyModel().acamar(latency, area)
        assert energy.dynamic_compute_j > 0
        assert energy.static_leakage_j > 0
        assert energy.memory_j > 0
        assert energy.total_j > 0

    def test_static_leakage_scales_with_area(self, solved):
        problem, result, model, latency, area = solved
        energy_model = EnergyModel()
        small = energy_model.static_design(latency.final, urb=2)
        large = energy_model.static_design(latency.final, urb=64)
        assert large.static_leakage_j > small.static_leakage_j

    def test_acamar_leaks_less_than_wide_static(self, solved):
        """The energy corollary of Figure 10's area saving."""
        problem, result, model, latency, area = solved
        energy_model = EnergyModel()
        static_urb = 16
        static_latency = model.solver_latency(
            problem.matrix, result.final, urb=static_urb
        )
        acamar_energy = energy_model.acamar(latency, area)
        static_energy = energy_model.static_design(static_latency, static_urb)
        leak_per_second_acamar = acamar_energy.static_leakage_j / max(
            latency.compute_seconds, 1e-12
        )
        leak_per_second_static = static_energy.static_leakage_j / max(
            static_latency.compute_seconds, 1e-12
        )
        if area < model.static_spmv_area_mm2(static_urb):
            assert leak_per_second_acamar < leak_per_second_static

    def test_reconfig_energy_tracks_icap_time(self, solved):
        problem, result, model, latency, area = solved
        energy = EnergyModel().acamar(latency, area)
        expected = ICAP_POWER_W * sum(
            a.reconfig_seconds for a in latency.attempts
        )
        assert energy.reconfig_j == pytest.approx(expected)

    def test_dynamic_energy_identical_for_same_work(self, solved):
        """Same solver run: dynamic (switching) energy is architecture-
        independent; only leakage and reconfiguration differ."""
        problem, result, model, latency, area = solved
        energy_model = EnergyModel()
        static_latency = model.solver_latency(
            problem.matrix, result.final, urb=8
        )
        acamar_energy = energy_model.acamar(latency.final, area)
        static_energy = energy_model.static_design(static_latency, 8)
        assert acamar_energy.dynamic_compute_j == pytest.approx(
            static_energy.dynamic_compute_j
        )

    def test_full_acamar_report_on_dataset(self):
        problem = load_problem("Wi")
        result = Acamar().solve(problem.matrix, problem.b)
        model = PerformanceModel()
        latency = model.acamar_latency(problem.matrix, result)
        area = model.acamar_spmv_area_mm2(problem.matrix, result.plan)
        energy = EnergyModel().acamar(latency, area)
        assert 0 < energy.total_j < 1.0  # sane magnitude for a ms-scale solve


class TestFleetEnergy:
    def fleet_report(self, **overrides):
        fields = dict(
            modeled_flops=2e9,
            slot_area_mm2=0.02,
            provisioned_slot_seconds=16.0,
            provisioned_fleet_seconds=8.0,
            config_loads=10,
            config_load_seconds=1e-3,
        )
        fields.update(overrides)
        return EnergyModel().fleet(**fields)

    def test_components_follow_the_constants(self):
        report = self.fleet_report()
        mac_ops = 1e9  # 2 FLOPs per MAC-op
        assert report.dynamic_compute_j == pytest.approx(
            mac_ops * MAC_ENERGY_J
        )
        assert report.memory_j == pytest.approx(
            mac_ops * CSR_BYTES_PER_NNZ * HBM_ENERGY_PER_BYTE_J
        )
        assert report.reconfig_j == pytest.approx(
            ICAP_POWER_W * 10 * 1e-3
        )
        device = EnergyModel().device
        assert report.static_leakage_j == pytest.approx(
            LEAKAGE_W_PER_MM2
            * (16.0 * 0.02 + 8.0 * device.fixed_area_mm2)
        )

    def test_total_and_efficiency(self):
        report = self.fleet_report()
        assert report.total_j == pytest.approx(
            report.dynamic_compute_j + report.static_leakage_j
            + report.memory_j + report.reconfig_j
        )
        assert report.gflops_per_watt == pytest.approx(
            report.modeled_flops / report.total_j / 1e9
        )

    def test_idle_fabric_still_leaks(self):
        """Provisioned-but-idle slots cost leakage: the serving-tier
        face of the underutilization argument."""
        busy = self.fleet_report()
        overprovisioned = self.fleet_report(
            provisioned_slot_seconds=64.0, provisioned_fleet_seconds=32.0
        )
        assert (
            overprovisioned.static_leakage_j > busy.static_leakage_j
        )
        assert (
            overprovisioned.gflops_per_watt < busy.gflops_per_watt
        )

    def test_zero_energy_guards_efficiency(self):
        report = FleetEnergyReport(0.0, 0.0, 0.0, 0.0, 0.0)
        assert report.gflops_per_watt == 0.0

    def test_as_dict_includes_efficiency(self):
        doc = self.fleet_report().as_dict()
        assert set(doc) == {
            "modeled_flops", "dynamic_compute_j", "static_leakage_j",
            "memory_j", "reconfig_j", "total_j", "gflops_per_watt",
        }
