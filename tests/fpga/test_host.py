"""Tests for the host-side transfer and end-to-end latency model."""

import pytest

from repro import Acamar
from repro.datasets import load_problem, poisson_2d
from repro.fpga import PerformanceModel
from repro.fpga.host import (
    BATCHED_TRANSFER_SETUP_SECONDS,
    PCIE_BANDWIDTH_BYTES_PER_S,
    TRANSFER_SETUP_SECONDS,
    batched_transfer_seconds,
    end_to_end,
    matrix_transfer_bytes,
    transfer_seconds,
    vector_transfer_bytes,
)


class TestTransferMath:
    def test_matrix_bytes(self, small_csr):
        # 10 nnz * (4 + 4) + 5 offsets * 8
        assert matrix_transfer_bytes(small_csr) == 10 * 8 + 5 * 8

    def test_vector_bytes(self):
        assert vector_transfer_bytes(1000) == 4000

    def test_transfer_time_components(self):
        bytes_only = transfer_seconds(PCIE_BANDWIDTH_BYTES_PER_S, 0)
        assert bytes_only == pytest.approx(1.0)
        with_setup = transfer_seconds(0, 3)
        assert with_setup == pytest.approx(3 * TRANSFER_SETUP_SECONDS)


class TestBatchedTransfer:
    def test_single_member_equals_plain_transfer(self):
        n_bytes = 4 * 65536
        assert batched_transfer_seconds(n_bytes, 1) == pytest.approx(
            transfer_seconds(n_bytes)
        )

    def test_chained_members_amortize_setup(self):
        n_bytes = 4 * 65536
        k = 8
        separate = k * transfer_seconds(n_bytes)
        chained = batched_transfer_seconds(n_bytes, k)
        assert chained < separate
        # The bandwidth term is unchanged; only setup amortizes.
        saving = (k - 1) * (
            TRANSFER_SETUP_SECONDS - BATCHED_TRANSFER_SETUP_SECONDS
        )
        assert separate - chained == pytest.approx(saving)

    def test_empty_batch_is_free(self):
        assert batched_transfer_seconds(4096, 0) == 0.0


class TestEndToEnd:
    @pytest.fixture
    def solved(self):
        problem = poisson_2d(24)
        result = Acamar().solve(problem.matrix, problem.b)
        latency = PerformanceModel().acamar_latency(problem.matrix, result)
        return problem, result, latency

    def test_components_sum(self, solved):
        problem, _, latency = solved
        report = end_to_end(problem.matrix, latency)
        assert report.total_seconds == pytest.approx(
            report.upload_seconds
            + report.compute_seconds
            + report.reconfig_seconds
            + report.download_seconds
        )

    def test_accepts_static_latency_report(self, solved):
        problem, result, _ = solved
        static = PerformanceModel().solver_latency(
            problem.matrix, result.final, urb=8
        )
        report = end_to_end(problem.matrix, static)
        assert report.reconfig_seconds == 0.0
        assert report.compute_seconds == static.compute_seconds

    def test_data_movement_is_minor_for_iterative_solves(self, solved):
        """The matrix uploads once but is swept hundreds of times, so
        PCIe must be a small share of end-to-end time."""
        problem, _, latency = solved
        report = end_to_end(problem.matrix, latency)
        assert report.data_movement_fraction < 0.5

    def test_chunked_upload_charges_per_chunk_setup(self):
        problem = load_problem("At")  # n=4096: 1 chunk at default size
        result = Acamar().solve(problem.matrix, problem.b)
        latency = PerformanceModel().acamar_latency(problem.matrix, result)
        one_chunk = end_to_end(problem.matrix, latency, chunk_size=4096)
        many_chunks = end_to_end(problem.matrix, latency, chunk_size=256)
        assert many_chunks.upload_seconds > one_chunk.upload_seconds

    def test_fraction_zero_for_empty_report(self):
        from repro.fpga.host import EndToEndReport

        empty = EndToEndReport(0.0, 0.0, 0.0, 0.0)
        assert empty.data_movement_fraction == 0.0
