"""Tests for the solver-level FPGA performance model."""

import numpy as np
import pytest

from repro import Acamar, AcamarConfig
from repro.core.initialize import initialize_spmv_count
from repro.datasets import poisson_2d
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError
from repro.fpga.cost_model import (
    PerformanceModel,
    expand_plan_to_rows,
    operator_row_lengths,
    plan_event_unrolls,
)
from repro.solvers import JacobiSolver


@pytest.fixture
def model():
    return PerformanceModel()


@pytest.fixture
def solved_problem():
    problem = poisson_2d(16)
    acamar = Acamar(AcamarConfig())
    return problem, acamar.solve(problem.matrix, problem.b)


class TestOperatorRowLengths:
    def test_jacobi_excludes_diagonal(self):
        matrix = sdd_matrix(64, 4.0, seed=1)
        lengths = operator_row_lengths(matrix, "jacobi")
        np.testing.assert_array_equal(lengths, matrix.without_diagonal().row_lengths())

    def test_other_solvers_use_full_matrix(self):
        matrix = sdd_matrix(64, 4.0, seed=1)
        for solver in ("cg", "bicgstab", "gmres"):
            np.testing.assert_array_equal(
                operator_row_lengths(matrix, solver), matrix.row_lengths()
            )


class TestSolverLatency:
    def test_requires_exactly_one_of_plan_or_urb(self, model, solved_problem):
        problem, result = solved_problem
        with pytest.raises(ConfigurationError, match="exactly one"):
            model.solver_latency(problem.matrix, result.final)
        with pytest.raises(ConfigurationError, match="exactly one"):
            model.solver_latency(
                problem.matrix, result.final, plan=result.plan, urb=8
            )

    def test_invalid_urb(self, model, solved_problem):
        problem, result = solved_problem
        with pytest.raises(ConfigurationError, match="urb"):
            model.solver_latency(problem.matrix, result.final, urb=0)

    def test_static_design_has_no_reconfig(self, model, solved_problem):
        problem, result = solved_problem
        latency = model.solver_latency(problem.matrix, result.final, urb=8)
        assert latency.reconfig_seconds == 0.0
        assert latency.reconfig_events == 0

    def test_components_sum_to_totals(self, model, solved_problem):
        problem, result = solved_problem
        latency = model.solver_latency(problem.matrix, result.final, plan=result.plan)
        assert latency.compute_seconds == pytest.approx(
            latency.init_seconds + latency.spmv_seconds + latency.dense_seconds
        )
        assert latency.total_seconds == pytest.approx(
            latency.compute_seconds + latency.reconfig_seconds
        )

    def test_loop_sweeps_match_op_counts(self, model, solved_problem):
        problem, result = solved_problem
        latency = model.solver_latency(problem.matrix, result.final, plan=result.plan)
        expected = result.final.ops.spmv_count() - initialize_spmv_count(
            result.final.solver
        )
        assert latency.loop_sweeps == expected

    def test_spmv_fraction_dominates_for_iterative_solvers(
        self, model, solved_problem
    ):
        """Figure 1's claim at the unit level."""
        problem, result = solved_problem
        latency = model.solver_latency(problem.matrix, result.final, urb=8)
        assert latency.spmv_fraction > 0.4

    def test_smaller_urb_is_slower(self, model, solved_problem):
        problem, result = solved_problem
        slow = model.solver_latency(problem.matrix, result.final, urb=1)
        fast = model.solver_latency(problem.matrix, result.final, urb=16)
        assert slow.compute_seconds > fast.compute_seconds

    def test_jacobi_latency_uses_offdiagonal_lengths(self, model):
        matrix = sdd_matrix(128, 6.0, seed=2)
        rng = np.random.default_rng(0)
        b = matrix.matvec(rng.standard_normal(128)).astype(np.float32)
        result = JacobiSolver().solve(matrix, b)
        latency = model.solver_latency(matrix, result, urb=4)
        # cycles per sweep reflect nnz without the diagonal
        per_sweep = latency.spmv_report.cycles / max(latency.loop_sweeps, 1)
        lengths = matrix.without_diagonal().row_lengths()
        slots = np.maximum(1, -(-lengths // 4)).sum()
        assert per_sweep == pytest.approx(slots + model.device.pipeline_fill_cycles)


class TestAcamarLatency:
    def test_single_attempt_no_swap_cost(self, model, solved_problem):
        problem, result = solved_problem
        report = model.acamar_latency(problem.matrix, result)
        assert len(report.attempts) == 1
        assert report.solver_swap_seconds == 0.0
        assert report.total_seconds >= report.compute_seconds

    def test_multi_attempt_charges_solver_swaps(self, model):
        problem = poisson_2d(12)
        acamar = Acamar()
        result = acamar.solve(problem.matrix, problem.b)
        # fabricate a two-attempt result by reusing the same attempt twice
        from repro.core.accelerator import AcamarResult, SolverAttempt

        doubled = AcamarResult(
            selection=result.selection,
            plan=result.plan,
            attempts=(
                result.attempts[0],
                SolverAttempt("cg", "solver_modifier", result.final),
            ),
        )
        report = model.acamar_latency(problem.matrix, doubled)
        assert report.solver_swap_seconds == pytest.approx(
            model.reconfig.solver_swap_seconds()
        )


class TestPlanHelpers:
    def test_expand_checks_row_count(self, solved_problem):
        problem, result = solved_problem
        other = sdd_matrix(32, 4.0, seed=3)
        with pytest.raises(ConfigurationError, match="rows"):
            expand_plan_to_rows(result.plan, other.n_rows)

    def test_event_unrolls_include_wraparound(self):
        from repro.core.finegrained import ReconfigurationPlan, RowSetPlan
        from repro.core.msid import MSIDChain

        msid = MSIDChain(0, 0.0).optimize(np.array([4.0, 8.0]))
        plan = ReconfigurationPlan(
            sets=(
                RowSetPlan(0, 10, 4, False),
                RowSetPlan(10, 20, 8, True),
            ),
            msid=msid,
            raw_unrolls=np.array([4, 8]),
            final_unrolls=np.array([4, 8]),
        )
        events = plan_event_unrolls(plan)
        assert events == [8, 4]  # set change + wrap back to first config

    def test_uniform_plan_has_no_events(self):
        from repro.core.finegrained import ReconfigurationPlan, RowSetPlan
        from repro.core.msid import MSIDChain

        msid = MSIDChain(0, 0.0).optimize(np.array([4.0, 4.0]))
        plan = ReconfigurationPlan(
            sets=(RowSetPlan(0, 10, 4, False), RowSetPlan(10, 20, 4, False)),
            msid=msid,
            raw_unrolls=np.array([4, 4]),
            final_unrolls=np.array([4, 4]),
        )
        assert plan_event_unrolls(plan) == []


class TestAreaModel:
    def test_static_area_linear_in_urb(self, model):
        assert model.static_spmv_area_mm2(16) == pytest.approx(
            2 * model.static_spmv_area_mm2(8)
        )

    def test_acamar_area_between_min_and_max_set_area(self, model, solved_problem):
        problem, result = solved_problem
        area = model.acamar_spmv_area_mm2(problem.matrix, result.plan)
        unrolls = [s.unroll for s in result.plan.sets]
        low = model.static_spmv_area_mm2(min(unrolls))
        high = model.static_spmv_area_mm2(max(unrolls))
        assert low <= area <= high

    def test_performance_efficiency_positive(self, model, solved_problem):
        problem, result = solved_problem
        latency = model.solver_latency(problem.matrix, result.final, plan=result.plan)
        area = model.acamar_spmv_area_mm2(problem.matrix, result.plan)
        eff = model.performance_efficiency(latency.spmv_report, area)
        assert eff > 0
