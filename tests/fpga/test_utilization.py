"""Tests for Eq. 5 resource-underutilization accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpga.utilization import (
    mean_underutilization,
    occupancy_underutilization,
    row_underutilization,
    underutilization_improvement_ratio,
)


class TestEquation5:
    def test_paper_equation_10_example(self):
        """Section VII-A: 8 non-zeros at unroll 10 -> 20% underutilization."""
        value = row_underutilization(np.array([8]), 10)[0]
        assert value == pytest.approx(0.2)

    def test_paper_equation_11_example(self):
        """Section VII-A: 6 non-zeros at unroll 3 -> 0% underutilization."""
        value = row_underutilization(np.array([6]), 3)[0]
        assert value == pytest.approx(0.0)

    def test_exact_multiple_is_fully_utilized(self):
        values = row_underutilization(np.array([4, 8, 16]), 4)
        np.testing.assert_allclose(values, 0.0)

    def test_below_unroll_branch(self):
        # nnz < unroll: (U - nnz)/U idle fraction.
        values = row_underutilization(np.array([1, 3]), 4)
        np.testing.assert_allclose(values, [0.75, 0.25])

    def test_above_unroll_branch_uses_modulo(self):
        # nnz >= unroll: mod(nnz, U)/U per the paper's printed formula.
        values = row_underutilization(np.array([9, 10, 12]), 8)
        np.testing.assert_allclose(values, [1 / 8, 2 / 8, 4 / 8])

    def test_per_row_unroll_vector(self):
        values = row_underutilization(np.array([8, 8]), np.array([10, 8]))
        np.testing.assert_allclose(values, [0.2, 0.0])

    def test_invalid_unroll(self):
        with pytest.raises(ConfigurationError):
            row_underutilization(np.array([3]), 0)

    def test_mean_over_rows(self):
        mean = mean_underutilization(np.array([8, 6]), np.array([10, 3]))
        assert mean == pytest.approx(0.1)

    def test_mean_empty(self):
        assert mean_underutilization(np.array([], dtype=int), 4) == 0.0


class TestOccupancy:
    def test_perfect_fit(self):
        assert occupancy_underutilization(np.array([8, 8]), 8) == 0.0

    def test_half_filled_final_chunk(self):
        # one row of 12 at U=8: 2 slots * 8 = 16 provisioned, 12 busy.
        value = occupancy_underutilization(np.array([12]), 8)
        assert value == pytest.approx(4 / 16)

    def test_empty_rows_waste_one_slot(self):
        value = occupancy_underutilization(np.array([0, 8]), 8)
        assert value == pytest.approx(8 / 16)

    def test_grows_with_oversized_unroll(self):
        lengths = np.array([3, 5, 2, 7])
        small = occupancy_underutilization(lengths, 4)
        large = occupancy_underutilization(lengths, 32)
        assert large > small

    def test_invalid_unroll(self):
        with pytest.raises(ConfigurationError):
            occupancy_underutilization(np.array([3]), -1)

    def test_empty_matrix(self):
        assert occupancy_underutilization(np.array([], dtype=int), 4) == 0.0


class TestImprovementRatio:
    def test_basic_ratio(self):
        assert underutilization_improvement_ratio(0.6, 0.2) == pytest.approx(3.0)

    def test_floor_guards_zero_acamar(self):
        ratio = underutilization_improvement_ratio(0.5, 0.0, floor=1e-6)
        assert ratio == pytest.approx(0.5 / 1e-6)
