"""Tests for the co-tenancy (freed fabric) model."""

import pytest

from repro import Acamar
from repro.datasets import load_problem
from repro.errors import ConfigurationError
from repro.fpga import PerformanceModel
from repro.fpga.multitenancy import (
    DENSE_GEMM_TILE,
    TenantSpec,
    co_tenancy,
)


@pytest.fixture(scope="module")
def planned():
    problem = load_problem("G2")  # short rows: Acamar region far below URB=16
    plan = Acamar().plan(problem.matrix)
    return problem, plan


class TestTenantSpec:
    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            TenantSpec("bad", area_mm2=0.0, macs=4)
        with pytest.raises(ConfigurationError):
            TenantSpec("bad", area_mm2=0.001, macs=-1)


class TestCoTenancy:
    def test_acamar_hosts_more_tenants_when_smaller(self, planned):
        problem, plan = planned
        report = co_tenancy(problem.matrix, plan, static_urb=16)
        model = PerformanceModel()
        acamar_area = model.acamar_spmv_area_mm2(problem.matrix, plan)
        if acamar_area < model.static_spmv_area_mm2(16):
            assert report.extra_instances > 0
            assert report.extra_peak_flops > 0
        # The static design leaves zero slack in its own floorplan.
        assert report.static_instances == 0

    def test_budget_defaults_to_static_region(self, planned):
        problem, plan = planned
        report = co_tenancy(problem.matrix, plan, static_urb=16)
        model = PerformanceModel()
        assert report.budget_area_mm2 == pytest.approx(
            model.static_spmv_area_mm2(16)
        )

    def test_larger_budget_hosts_more(self, planned):
        problem, plan = planned
        small = co_tenancy(problem.matrix, plan, 16)
        large = co_tenancy(
            problem.matrix, plan, 16,
            budget_area_mm2=small.budget_area_mm2 * 2,
        )
        assert large.acamar_instances > small.acamar_instances

    def test_custom_tenant(self, planned):
        problem, plan = planned
        chunky = TenantSpec("chunky", area_mm2=1.0, macs=1000)
        report = co_tenancy(problem.matrix, plan, 16, tenant=chunky)
        assert report.acamar_instances == 0  # too big to fit the slack

    def test_invalid_budget(self, planned):
        problem, plan = planned
        with pytest.raises(ConfigurationError):
            co_tenancy(problem.matrix, plan, 16, budget_area_mm2=0.0)

    def test_default_tile_is_sane(self):
        assert DENSE_GEMM_TILE.macs == 8
        assert DENSE_GEMM_TILE.area_mm2 > 0


class TestFleetSpec:
    def test_defaults_and_total_slots(self):
        from repro.fpga.multitenancy import FleetSpec

        fleet = FleetSpec()
        assert fleet.devices == 1
        assert fleet.slots_per_device == 4
        assert fleet.total_slots == 4
        assert FleetSpec(devices=3, slots_per_device=2).total_slots == 6

    def test_validation(self):
        from repro.fpga.multitenancy import FleetSpec

        with pytest.raises(ConfigurationError):
            FleetSpec(devices=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(slots_per_device=0)

    def test_sized_for_divides_mac_budget(self):
        from repro.fpga.multitenancy import ALVEO_U55C, FleetSpec

        fleet = FleetSpec.sized_for(max_unroll=512, devices=2)
        expected = min(16, ALVEO_U55C.max_macs // (2 * 512))
        assert fleet.slots_per_device == expected
        assert fleet.devices == 2

    def test_sized_for_clamps_to_bounds(self):
        from repro.fpga.multitenancy import FleetSpec

        tiny = FleetSpec.sized_for(max_unroll=1)
        assert tiny.slots_per_device == 16  # capped
        huge = FleetSpec.sized_for(max_unroll=10**9)
        assert huge.slots_per_device == 1  # floored
        with pytest.raises(ConfigurationError):
            FleetSpec.sized_for(max_unroll=0)

    def test_exported_from_package(self):
        from repro.fpga import FleetSpec as exported
        from repro.fpga.multitenancy import FleetSpec

        assert exported is FleetSpec
