"""Tests for the on-chip buffer and memory-bandwidth models."""

import pytest

from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.fpga import ALVEO_U55C
from repro.fpga.memory import (
    HBM_BANDWIDTH_BPS,
    StreamBuffer,
    max_streaming_unroll,
    prbuffer_for,
    streaming_bytes_per_second,
    tbuffer_for,
    validate_plan_bandwidth,
)


class TestStreamBuffer:
    def test_write_read_cycle(self):
        buffer = StreamBuffer("test", capacity=4)
        buffer.write(3)
        assert buffer.occupancy == 3
        assert buffer.free == 1
        buffer.read(2)
        assert buffer.occupancy == 1
        assert buffer.peak_occupancy == 3

    def test_overflow_raises(self):
        buffer = StreamBuffer("test", capacity=2)
        buffer.write(2)
        with pytest.raises(ConfigurationError, match="overflow"):
            buffer.write(1)

    def test_underflow_raises(self):
        buffer = StreamBuffer("test", capacity=2)
        with pytest.raises(ConfigurationError, match="underflow"):
            buffer.read(1)

    def test_negative_amounts_rejected(self):
        buffer = StreamBuffer("test", capacity=2)
        with pytest.raises(ConfigurationError):
            buffer.write(-1)
        with pytest.raises(ConfigurationError):
            buffer.read(-1)

    def test_drain_resets_occupancy_not_peak(self):
        buffer = StreamBuffer("test", capacity=8)
        buffer.write(5)
        buffer.drain()
        assert buffer.occupancy == 0
        assert buffer.peak_occupancy == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamBuffer("bad", capacity=0)


class TestPaperBuffers:
    def test_tbuffer_holds_one_chunk_of_sets(self):
        config = AcamarConfig(sampling_rate=32)
        buffer = tbuffer_for(config)
        buffer.write(32)  # exactly one chunk's trace
        assert buffer.free == 0

    def test_prbuffer_holds_one_chunk_of_rows(self):
        config = AcamarConfig(chunk_size=4096)
        buffer = prbuffer_for(config)
        buffer.write(4096)
        assert buffer.free == 0

    def test_plan_fits_paper_buffers(self):
        """Every Acamar plan must fit tBuffer by construction."""
        from repro import Acamar
        from repro.datasets import load_problem

        config = AcamarConfig()
        problem = load_problem("2C")
        plan = Acamar(config).plan(problem.matrix)
        sets_per_chunk = max(
            1,
            sum(
                1
                for s in plan.sets
                if s.start_row < config.chunk_size
            ),
        )
        assert sets_per_chunk <= tbuffer_for(config).capacity


class TestBandwidth:
    def test_traffic_linear_in_unroll(self):
        assert streaming_bytes_per_second(8, ALVEO_U55C) == pytest.approx(
            2 * streaming_bytes_per_second(4, ALVEO_U55C)
        )

    def test_invalid_unroll(self):
        with pytest.raises(ConfigurationError):
            streaming_bytes_per_second(0, ALVEO_U55C)

    def test_max_streaming_unroll_consistent(self):
        limit = max_streaming_unroll(ALVEO_U55C)
        assert streaming_bytes_per_second(limit, ALVEO_U55C) <= HBM_BANDWIDTH_BPS
        assert (
            streaming_bytes_per_second(limit + 1, ALVEO_U55C) > HBM_BANDWIDTH_BPS
        )

    def test_paper_max_unroll_is_feasible(self):
        """The config's 64-lane ceiling must be streamable on the u55c."""
        config = AcamarConfig()
        assert config.max_unroll <= max_streaming_unroll(ALVEO_U55C)

    def test_validate_plan_bandwidth(self):
        assert validate_plan_bandwidth([1, 8, 64], ALVEO_U55C)
        assert not validate_plan_bandwidth([10_000], ALVEO_U55C)
