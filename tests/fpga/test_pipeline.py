"""Tests for the event-driven SpMV pipeline simulator."""

import numpy as np
import pytest

from repro import Acamar, AcamarConfig
from repro.core import FineGrainedReconfigurationUnit
from repro.datasets import load_problem
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError
from repro.fpga import ALVEO_U55C, SpMVPipelineSimulator
from repro.fpga.pipeline import MAC_LATENCY_CYCLES, _tree_latency


@pytest.fixture
def simulator():
    return SpMVPipelineSimulator(ALVEO_U55C)


@pytest.fixture
def planned_matrix():
    matrix = sdd_matrix(512, 8.0, seed=42)
    plan = FineGrainedReconfigurationUnit(AcamarConfig()).plan(matrix)
    return matrix, plan


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("key", ["2C", "Wi", "Cr", "G2"])
    def test_cycles_match_within_drain_tail(self, simulator, key):
        problem = load_problem(key)
        plan = Acamar().plan(problem.matrix)
        pipeline_c, analytic_c = simulator.validate_against_analytic(
            problem.matrix.row_lengths(), plan
        )
        # The two models may differ only by the pipeline's drain tail.
        assert abs(pipeline_c - analytic_c) < 80
        assert pipeline_c / analytic_c == pytest.approx(1.0, abs=0.05)

    def test_busy_and_provisioned_identical_to_analytic(
        self, simulator, planned_matrix
    ):
        from repro.fpga.kernels import spmv_sweep

        matrix, plan = planned_matrix
        trace = SpMVPipelineSimulator(
            ALVEO_U55C, include_reconfiguration=False
        ).simulate(matrix.row_lengths(), plan)
        analytic = spmv_sweep(matrix.row_lengths(), plan.unroll_for_rows, ALVEO_U55C)
        assert trace.busy_mac_cycles == analytic.busy_mac_cycles
        assert trace.provisioned_mac_cycles == analytic.provisioned_mac_cycles


class TestPipelineMechanics:
    def test_single_row_latency(self):
        """One row of U nnz: 1 issue + tree latency."""
        from repro.core.finegrained import ReconfigurationPlan, RowSetPlan
        from repro.core.msid import MSIDChain

        msid = MSIDChain(0, 0.0).optimize(np.array([4.0]))
        plan = ReconfigurationPlan(
            sets=(RowSetPlan(0, 1, 4, False),),
            msid=msid,
            raw_unrolls=np.array([4]),
            final_unrolls=np.array([4]),
        )
        trace = SpMVPipelineSimulator(
            ALVEO_U55C, include_reconfiguration=False
        ).simulate(np.array([4]), plan)
        assert trace.total_cycles == _tree_latency(4) + 1

    def test_reconfiguration_adds_drain_and_load(self, planned_matrix):
        matrix, plan = planned_matrix
        with_reconfig = SpMVPipelineSimulator(ALVEO_U55C).simulate(
            matrix.row_lengths(), plan
        )
        without = SpMVPipelineSimulator(
            ALVEO_U55C, include_reconfiguration=False
        ).simulate(matrix.row_lengths(), plan)
        if plan.reconfiguration_count:
            assert with_reconfig.reconfig_stall_cycles > 0
            assert with_reconfig.total_cycles > without.total_cycles
        assert without.reconfig_stall_cycles == 0

    def test_occupancy_in_unit_interval(self, simulator, planned_matrix):
        matrix, plan = planned_matrix
        trace = simulator.simulate(matrix.row_lengths(), plan)
        assert 0.0 < trace.occupancy <= 1.0

    def test_set_traces_cover_plan(self, simulator, planned_matrix):
        matrix, plan = planned_matrix
        trace = simulator.simulate(matrix.row_lengths(), plan)
        assert len(trace.sets) == len(plan.sets)
        assert trace.sets[0].start_row == 0
        assert trace.sets[-1].stop_row == matrix.n_rows

    def test_row_count_mismatch_rejected(self, simulator, planned_matrix):
        matrix, plan = planned_matrix
        with pytest.raises(ConfigurationError, match="rows"):
            simulator.simulate(np.ones(10, dtype=np.int64), plan)

    def test_tree_latency_grows_with_unroll(self):
        assert _tree_latency(64) > _tree_latency(4) >= MAC_LATENCY_CYCLES + 2

    def test_writeback_conflicts_counted_for_burst_of_short_rows(self):
        """Many 1-chunk rows finish 1/cycle — exactly the port rate, so
        no conflicts; rows finishing simultaneously would conflict."""
        from repro.core.finegrained import ReconfigurationPlan, RowSetPlan
        from repro.core.msid import MSIDChain

        lengths = np.full(32, 4, dtype=np.int64)
        msid = MSIDChain(0, 0.0).optimize(np.array([4.0]))
        plan = ReconfigurationPlan(
            sets=(RowSetPlan(0, 32, 4, False),),
            msid=msid,
            raw_unrolls=np.array([4]),
            final_unrolls=np.array([4]),
        )
        trace = SpMVPipelineSimulator(
            ALVEO_U55C, include_reconfiguration=False
        ).simulate(lengths, plan)
        assert trace.writeback_conflict_cycles == 0
