"""Tests for the CSR-scalar / CSR-vector / adaptive GPU kernel variants."""

import numpy as np
import pytest

from repro.datasets.generators import sample_row_lengths
from repro.errors import ConfigurationError
from repro.gpu import (
    ADAPTIVE_VECTOR_THRESHOLD,
    CuSparseSpMVModel,
    scalar_kernel_underutilization,
)
from repro.sparse import COOMatrix


def matrix_with_rows(lengths, seed=0):
    rng = np.random.default_rng(seed)
    n = len(lengths)
    rows = np.repeat(np.arange(n), lengths)
    cols = np.concatenate(
        [rng.choice(n, size=int(k), replace=False) for k in lengths]
    )
    return COOMatrix((n, n), rows, cols, np.ones(len(rows))).canonical().to_csr()


class TestScalarUnderutilization:
    def test_uniform_rows_have_no_divergence(self):
        assert scalar_kernel_underutilization(np.full(64, 7)) == pytest.approx(0.0)

    def test_one_long_row_starves_its_warp(self):
        lengths = np.full(32, 2)
        lengths[0] = 64
        # busy = 64 + 31*2 = 126 of 32*64 provisioned
        expected = 1 - 126 / (32 * 64)
        assert scalar_kernel_underutilization(lengths) == pytest.approx(expected)

    def test_empty_matrix(self):
        assert scalar_kernel_underutilization(np.array([], dtype=int)) == 0.0


class TestKernelSelection:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            CuSparseSpMVModel(kernel="tensorcore")

    def test_adaptive_picks_scalar_for_short_rows(self):
        model = CuSparseSpMVModel(kernel="adaptive")
        short = np.full(256, 3)
        assert model._resolve_kernel(short) == "scalar"

    def test_adaptive_picks_vector_for_long_rows(self):
        model = CuSparseSpMVModel(kernel="adaptive")
        long_rows = np.full(256, int(ADAPTIVE_VECTOR_THRESHOLD) * 3)
        assert model._resolve_kernel(long_rows) == "vector"


class TestRegimes:
    def test_scalar_wins_on_short_uniform_rows(self):
        """3-NNZ rows: vector wastes 29/32 lanes; scalar has none."""
        matrix = matrix_with_rows(np.full(512, 3))
        vector = CuSparseSpMVModel(kernel="vector").sweep(matrix)
        scalar = CuSparseSpMVModel(kernel="scalar").sweep(matrix)
        assert scalar.underutilization < vector.underutilization

    def test_vector_wins_on_irregular_rows(self, rng):
        """Skewed rows diverge the scalar kernel badly."""
        lengths = sample_row_lengths(512, 12.0, rng, spread=1.2, correlation=0.0)
        matrix = matrix_with_rows(lengths)
        vector = CuSparseSpMVModel(kernel="vector").sweep(matrix)
        scalar = CuSparseSpMVModel(kernel="scalar").sweep(matrix)
        assert vector.underutilization < scalar.underutilization

    def test_adaptive_never_worse_than_worst(self, rng):
        lengths = sample_row_lengths(512, 6.0, rng, correlation=0.0)
        matrix = matrix_with_rows(lengths)
        reports = {
            k: CuSparseSpMVModel(kernel=k).sweep(matrix)
            for k in ("vector", "scalar", "adaptive")
        }
        worst = max(
            reports["vector"].underutilization,
            reports["scalar"].underutilization,
        )
        assert reports["adaptive"].underutilization <= worst + 1e-12

    def test_all_variants_remain_memory_bound_on_big_matrices(self, rng):
        lengths = sample_row_lengths(4096, 8.0, rng)
        matrix = matrix_with_rows(lengths)
        for kernel in ("vector", "scalar"):
            assert CuSparseSpMVModel(kernel=kernel).sweep(matrix).memory_bound
