"""Property-based tests on the GPU kernel models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpu import CuSparseSpMVModel
from repro.gpu.cusparse_model import (
    scalar_kernel_underutilization,
    warp_lane_underutilization,
)

row_length_arrays = arrays(
    np.int64, st.integers(1, 300), elements=st.integers(0, 400)
)


@given(row_length_arrays)
@settings(max_examples=100, deadline=None)
def test_lane_underutilization_bounded(lengths):
    for metric in (warp_lane_underutilization, scalar_kernel_underutilization):
        value = metric(lengths)
        assert 0.0 <= value <= 1.0


@given(st.integers(1, 10))
@settings(max_examples=20, deadline=None)
def test_uniform_full_warps_are_perfect_for_both_kernels(n_warps):
    # Scalar needs a whole number of 32-row warps; vector is per-row.
    uniform = np.full(32 * n_warps, 32, dtype=np.int64)
    assert warp_lane_underutilization(uniform) == 0.0
    assert scalar_kernel_underutilization(uniform) == 0.0


@given(row_length_arrays, st.sampled_from(["vector", "scalar", "adaptive"]))
@settings(max_examples=60, deadline=None)
def test_sweep_report_invariants(lengths, kernel):
    report = CuSparseSpMVModel(kernel=kernel).sweep_from_row_lengths(lengths)
    assert report.seconds >= 0
    assert report.flops == 2.0 * lengths.sum()
    assert 0.0 <= report.underutilization <= 1.0
    assert 0.0 <= report.achieved_fraction <= 1.0


@given(row_length_arrays)
@settings(max_examples=60, deadline=None)
def test_adaptive_matches_one_of_the_fixed_kernels(lengths):
    adaptive = CuSparseSpMVModel(kernel="adaptive").sweep_from_row_lengths(
        lengths
    )
    fixed = {
        k: CuSparseSpMVModel(kernel=k).sweep_from_row_lengths(lengths)
        for k in ("vector", "scalar")
    }
    assert any(
        adaptive.seconds == r.seconds
        and adaptive.underutilization == r.underutilization
        for r in fixed.values()
    )
