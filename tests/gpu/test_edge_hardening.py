"""Pinned edge-case tests for the cuSPARSE model's divide-by-zero
hardening (zero-row and all-empty-row profiles).

The serving placement layer calls this model once per profiled source,
so every edge the request stream can produce must map to a *defined*
report — never NaN, never a ZeroDivisionError.  These tests pin the
exact contracted values so a regression shows up as a comparison
failure, not a crash three layers up.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import (
    CuSparseSpMVModel,
    scalar_kernel_underutilization,
    warp_lane_underutilization,
)


ZERO_ROWS = np.array([], dtype=np.int64)
ALL_EMPTY = np.zeros(64, dtype=np.int64)


class TestZeroRowProfile:
    """A matrix with no rows: the pass is a defined no-op."""

    @pytest.mark.parametrize("kernel", CuSparseSpMVModel.KERNELS)
    def test_sweep_is_a_noop(self, kernel):
        report = CuSparseSpMVModel(kernel=kernel).sweep_from_row_lengths(
            ZERO_ROWS
        )
        assert report.seconds == 0.0
        assert report.flops == 0.0
        assert report.lane_underutilization == 0.0
        assert report.achieved_flops == 0.0
        assert report.memory_bound is True
        assert report.achieved_fraction == 0.0

    def test_underutilization_metrics_are_zero(self):
        assert warp_lane_underutilization(ZERO_ROWS) == 0.0
        assert scalar_kernel_underutilization(ZERO_ROWS) == 0.0


class TestAllEmptyRowProfile:
    """Rows exist but hold no non-zeros: indptr traffic still flows."""

    @pytest.mark.parametrize("kernel", CuSparseSpMVModel.KERNELS)
    def test_sweep_pays_traffic_for_zero_flops(self, kernel):
        report = CuSparseSpMVModel(kernel=kernel).sweep_from_row_lengths(
            ALL_EMPTY
        )
        assert report.seconds > 0.0
        assert report.flops == 0.0
        assert report.achieved_flops == 0.0
        assert report.achieved_fraction == 0.0
        assert report.lane_underutilization == 1.0
        assert math.isfinite(report.seconds)

    def test_underutilization_metrics_are_total(self):
        assert warp_lane_underutilization(ALL_EMPTY) == 1.0
        assert scalar_kernel_underutilization(ALL_EMPTY) == 1.0


class TestAchievedFraction:
    def test_zero_flop_pass_is_exactly_zero(self):
        report = CuSparseSpMVModel().sweep_from_row_lengths(ALL_EMPTY)
        assert report.achieved_fraction == 0.0

    def test_zero_peak_device_does_not_divide_by_zero(self):
        report = CuSparseSpMVModel().sweep_from_row_lengths(
            np.full(8, 6, dtype=np.int64)
        )
        degenerate = dataclasses.replace(report, peak_flops=0.0)
        assert degenerate.achieved_fraction == 0.0

    def test_normal_pass_stays_in_unit_interval(self):
        report = CuSparseSpMVModel().sweep_from_row_lengths(
            np.full(1024, 6, dtype=np.int64)
        )
        assert 0.0 < report.achieved_fraction < 1.0


class TestValidation:
    def test_negative_row_length_rejected(self):
        with pytest.raises(ConfigurationError):
            CuSparseSpMVModel().sweep_from_row_lengths(
                np.array([3, -1, 2], dtype=np.int64)
            )

    def test_negative_row_length_rejected_in_metrics(self):
        with pytest.raises(ConfigurationError):
            warp_lane_underutilization(np.array([-4]))
        with pytest.raises(ConfigurationError):
            scalar_kernel_underutilization(np.array([-4]))

    def test_two_dimensional_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            CuSparseSpMVModel().sweep_from_row_lengths(
                np.ones((4, 4), dtype=np.int64)
            )
