"""Tests for the GPU device model and cuSPARSE SpMV cost model."""

import numpy as np
import pytest

from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError
from repro.gpu import (
    GTX_1650_SUPER,
    CuSparseSpMVModel,
    GPUDevice,
    warp_lane_underutilization,
)


class TestDevice:
    def test_1650_super_peak_flops(self):
        # 1280 cores x 2 x 1.725 GHz = 4.416 TFLOPS
        assert GTX_1650_SUPER.peak_flops == pytest.approx(4.416e12)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            GPUDevice(cuda_cores=0)
        with pytest.raises(ConfigurationError):
            GPUDevice(memory_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            GPUDevice(memory_efficiency=1.5)


class TestLaneUtilization:
    def test_full_warp_rows(self):
        assert warp_lane_underutilization(np.array([32, 64])) == 0.0

    def test_short_rows_waste_lanes(self):
        # 8 of 32 lanes busy -> 75% idle.
        assert warp_lane_underutilization(np.array([8])) == pytest.approx(0.75)

    def test_empty_rows_waste_everything(self):
        assert warp_lane_underutilization(np.array([0])) == 1.0

    def test_partial_final_pass(self):
        # 40 nnz: 2 passes of 32 lanes, 40 busy -> 1 - 40/64.
        assert warp_lane_underutilization(np.array([40])) == pytest.approx(
            1 - 40 / 64
        )

    def test_empty_matrix(self):
        assert warp_lane_underutilization(np.array([], dtype=int)) == 0.0

    def test_typical_scientific_rows_near_paper_average(self):
        """~6 NNZ/row gives the paper's ~81% GPU underutilization."""
        value = warp_lane_underutilization(np.full(1000, 6))
        assert value == pytest.approx(0.8125)


class TestSweepModel:
    def test_spmv_is_memory_bound(self):
        matrix = sdd_matrix(2048, 8.0, seed=1)
        report = CuSparseSpMVModel().sweep(matrix)
        assert report.memory_bound

    def test_achieved_fraction_tiny(self):
        """The paper's Figure 9 bottom: a few tenths of a percent of peak."""
        matrix = sdd_matrix(2048, 8.0, seed=1)
        report = CuSparseSpMVModel().sweep(matrix)
        assert 0.0 < report.achieved_fraction < 0.02

    def test_flops_counted(self):
        matrix = sdd_matrix(256, 4.0, seed=2)
        report = CuSparseSpMVModel().sweep(matrix)
        assert report.flops == 2.0 * matrix.nnz

    def test_seconds_positive_and_scale_with_size(self):
        small = CuSparseSpMVModel().sweep(sdd_matrix(256, 6.0, seed=3))
        large = CuSparseSpMVModel().sweep(sdd_matrix(4096, 6.0, seed=3))
        assert 0 < small.seconds < large.seconds

    def test_row_lengths_entry_point_matches_matrix(self):
        matrix = sdd_matrix(512, 6.0, seed=4)
        model = CuSparseSpMVModel()
        a = model.sweep(matrix)
        b = model.sweep_from_row_lengths(matrix.row_lengths())
        assert a.seconds == b.seconds
        assert a.underutilization == b.underutilization

    def test_compute_bound_regime_possible(self):
        """With an absurdly slow clock the kernel becomes compute bound."""
        slow_device = GPUDevice(boost_clock_hz=1e6)
        matrix = sdd_matrix(256, 8.0, seed=5)
        report = CuSparseSpMVModel(slow_device).sweep(matrix)
        assert not report.memory_bound
