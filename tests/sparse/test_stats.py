"""Tests for row-length statistics and set partitioning (Eq. 7-9)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sparse import CSRMatrix
from repro.sparse.stats import (
    partition_row_sets,
    row_length_stats,
    row_lengths,
    set_average_row_lengths,
)


class TestRowLengthStats:
    def test_basic(self, small_csr):
        stats = row_length_stats(small_csr)
        assert stats.n_rows == 4
        assert stats.nnz == 10
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 2
        assert stats.maximum == 3
        assert stats.cv == pytest.approx(stats.std / stats.mean)

    def test_empty_matrix(self):
        matrix = CSRMatrix((0, 0), [0], [], [])
        stats = row_length_stats(matrix)
        assert stats.mean == 0.0
        assert stats.cv == 0.0

    def test_row_lengths_helper(self, small_csr):
        np.testing.assert_array_equal(row_lengths(small_csr), [2, 3, 3, 2])


class TestPartitioning:
    def test_even_split(self):
        bounds = partition_row_sets(100, 4)
        assert bounds == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_remainder_spread_over_first_sets(self):
        bounds = partition_row_sets(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_covers_all_rows_exactly_once(self):
        for n, rate in [(37, 5), (4096, 32), (100, 100), (7, 32)]:
            bounds = partition_row_sets(n, rate)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == n
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo

    def test_more_sets_than_rows(self):
        bounds = partition_row_sets(3, 32)
        assert bounds == [(0, 1), (1, 2), (2, 3)]

    def test_zero_rows(self):
        assert partition_row_sets(0, 8) == []

    def test_invalid_sampling_rate(self):
        with pytest.raises(ConfigurationError):
            partition_row_sets(10, 0)


class TestSetAverages:
    def test_averages_match_manual(self, small_csr):
        averages = set_average_row_lengths(small_csr, 2)
        np.testing.assert_allclose(averages, [2.5, 2.5])

    def test_per_row_sets(self, small_csr):
        averages = set_average_row_lengths(small_csr, 4)
        np.testing.assert_allclose(averages, [2, 3, 3, 2])

    def test_global_average_preserved(self, rng):
        from tests.conftest import random_dense

        matrix = CSRMatrix.from_dense(random_dense(rng, 64, 64, 0.2))
        averages = set_average_row_lengths(matrix, 8)
        # Equal set sizes: the mean of set averages is the global mean.
        assert averages.mean() == pytest.approx(
            matrix.row_lengths().mean()
        )
