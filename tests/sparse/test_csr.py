"""Tests for the CSR compute format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CSRMatrix
from tests.conftest import random_dense


class TestConstruction:
    def test_valid(self, small_csr):
        assert small_csr.shape == (4, 4)
        assert small_csr.nnz == 10

    def test_indptr_wrong_length(self):
        with pytest.raises(SparseFormatError, match="indptr"):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(SparseFormatError, match="start at 0"):
            CSRMatrix((2, 2), [1, 1, 2], [0], [1.0])

    def test_indptr_decreasing_rejected(self):
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_indptr_data_mismatch(self):
        with pytest.raises(SparseFormatError, match="agree"):
            CSRMatrix((2, 2), [0, 1, 2], [0, 1], [1.0])

    def test_column_out_of_bounds(self):
        with pytest.raises(SparseFormatError, match="column index"):
            CSRMatrix((2, 2), [0, 1, 2], [0, 2], [1.0, 2.0])

    def test_unsorted_columns_rejected(self):
        with pytest.raises(SparseFormatError, match="strictly increasing"):
            CSRMatrix((1, 3), [0, 2], [2, 0], [1.0, 2.0])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SparseFormatError, match="strictly increasing"):
            CSRMatrix((1, 3), [0, 2], [1, 1], [1.0, 2.0])

    def test_decreasing_across_row_boundary_allowed(self):
        matrix = CSRMatrix((2, 3), [0, 1, 2], [2, 0], [1.0, 2.0])
        assert matrix.nnz == 2


class TestBasicProperties:
    def test_density(self, small_csr):
        assert small_csr.density == pytest.approx(10 / 16)

    def test_density_of_empty_shape(self):
        matrix = CSRMatrix((0, 0), [0], [], [])
        assert matrix.density == 0.0

    def test_row_lengths(self, small_csr):
        np.testing.assert_array_equal(small_csr.row_lengths(), [2, 3, 3, 2])

    def test_identity(self):
        eye = CSRMatrix.identity(4)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(4))


class TestMatvec:
    def test_against_dense(self, rng):
        dense = random_dense(rng, 30, 20, density=0.3)
        matrix = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(matrix.matvec(x), dense @ x, rtol=1e-12)

    def test_against_scipy(self, rng):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        dense = random_dense(rng, 50, 50, density=0.1)
        matrix = CSRMatrix.from_dense(dense)
        reference = scipy_sparse.csr_matrix(dense)
        x = rng.standard_normal(50)
        np.testing.assert_allclose(matrix.matvec(x), reference @ x, rtol=1e-12)

    def test_empty_rows_give_zero(self):
        matrix = CSRMatrix((3, 3), [0, 0, 1, 1], [1], [5.0])
        result = matrix.matvec(np.ones(3))
        np.testing.assert_array_equal(result, [0.0, 5.0, 0.0])

    def test_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeMismatchError):
            small_csr.matvec(np.ones(5))

    def test_rmatvec_against_dense(self, rng):
        dense = random_dense(rng, 25, 35, density=0.2)
        matrix = CSRMatrix.from_dense(dense)
        y = rng.standard_normal(25)
        np.testing.assert_allclose(matrix.rmatvec(y), dense.T @ y, rtol=1e-12)

    def test_rmatvec_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeMismatchError):
            small_csr.rmatvec(np.ones(3))

    def test_matvec_preserves_float32(self, small_csr):
        matrix = small_csr.astype(np.float32)
        result = matrix.matvec(np.ones(4, dtype=np.float32))
        assert result.dtype == np.float32


class TestStructure:
    def test_diagonal(self, small_csr):
        np.testing.assert_array_equal(small_csr.diagonal(), [4.0] * 4)

    def test_diagonal_with_missing_entries(self):
        dense = np.array([[0.0, 1.0], [2.0, 3.0]])
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(matrix.diagonal(), [0.0, 3.0])

    def test_diagonal_rectangular(self, rng):
        dense = random_dense(rng, 3, 5, density=0.8)
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix.diagonal(), np.diag(dense)[:3])

    def test_without_diagonal(self, small_csr, small_dense):
        off = small_csr.without_diagonal()
        expected = small_dense - np.diag(np.diag(small_dense))
        np.testing.assert_array_equal(off.to_dense(), expected)
        assert off.nnz == small_csr.nnz - 4

    def test_transpose_roundtrip(self, rng):
        dense = random_dense(rng, 8, 12, density=0.3)
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix.transpose().to_dense(), dense.T)
        np.testing.assert_allclose(
            matrix.transpose().transpose().to_dense(), dense
        )

    def test_row_slice(self, rng):
        dense = random_dense(rng, 10, 6, density=0.4)
        matrix = CSRMatrix.from_dense(dense)
        chunk = matrix.row_slice(3, 7)
        np.testing.assert_allclose(chunk.to_dense(), dense[3:7])

    def test_row_slice_clamps_bounds(self, small_csr):
        assert small_csr.row_slice(-5, 100).shape == (4, 4)
        assert small_csr.row_slice(3, 2).shape == (0, 4)

    def test_astype(self, small_csr):
        converted = small_csr.astype(np.float32)
        assert converted.data.dtype == np.float32
        np.testing.assert_allclose(converted.to_dense(), small_csr.to_dense())


class TestConversionsAndComparisons:
    def test_to_coo_roundtrip(self, rng):
        dense = random_dense(rng, 9, 9, density=0.25)
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix.to_coo().to_csr().to_dense(), dense)

    def test_to_csc_matches_dense(self, rng):
        dense = random_dense(rng, 7, 7, density=0.3)
        csc = CSRMatrix.from_dense(dense).to_csc()
        np.testing.assert_allclose(csc.to_dense(), dense)

    def test_structural_equality(self, small_csr):
        other = CSRMatrix(
            small_csr.shape,
            small_csr.indptr.copy(),
            small_csr.indices.copy(),
            small_csr.data * 2.0,
        )
        assert small_csr.structurally_equal(other)
        assert not small_csr.allclose(other)
        assert small_csr.allclose(small_csr)

    def test_structural_inequality_different_pattern(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]]))
        b = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert not a.structurally_equal(b)
