"""Property-based tests on the ELL / Sliced-ELL formats."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import CSRMatrix, ELLMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix


@st.composite
def sparse_dense(draw, max_dim=14):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    values = draw(
        arrays(
            np.float64,
            (n_rows, n_cols),
            elements=st.floats(-5, 5, allow_nan=False).map(
                lambda v: 0.0 if abs(v) < 1.5 else v
            ),
        )
    )
    return values


@given(sparse_dense())
@settings(max_examples=60, deadline=None)
def test_ell_roundtrip_and_matvec(dense):
    csr = CSRMatrix.from_dense(dense)
    ell = ELLMatrix.from_csr(csr)
    np.testing.assert_allclose(ell.to_csr().to_dense(), dense)
    x = np.arange(dense.shape[1], dtype=np.float64)
    np.testing.assert_allclose(ell.matvec(x), dense @ x, rtol=1e-10, atol=1e-10)
    assert ell.nnz == csr.nnz
    assert 0.0 <= ell.padding_fraction <= 1.0


@given(sparse_dense(), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_sliced_ell_roundtrip_any_slice_height(dense, slice_rows):
    csr = CSRMatrix.from_dense(dense)
    sell = SlicedELLMatrix.from_csr(csr, slice_rows=slice_rows)
    np.testing.assert_allclose(sell.to_csr().to_dense(), dense)
    assert sell.nnz == csr.nnz


@given(sparse_dense(), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_sliced_ell_never_pads_more_than_plain_ell(dense, slice_rows):
    csr = CSRMatrix.from_dense(dense)
    if csr.nnz == 0:
        return  # ELL degenerates to width 0; SELL keeps width >= 1
    sell = SlicedELLMatrix.from_csr(csr, slice_rows=slice_rows)
    ell = ELLMatrix.from_csr(csr)
    assert sell.padded_size <= ell.padded_size
