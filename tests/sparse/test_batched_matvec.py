"""Bit-identity tests for the batched SpMV kernels.

The whole batched stack rests on one contract: row ``k`` of every
batched product equals the corresponding single-vector kernel call
*bitwise*, for every kernel plan (dia fast path, general csr gather,
empty) and every dtype the solvers use.  ``np.array_equal`` is the
right assertion here — approximate equality would hide exactly the
drift these kernels promise not to introduce.
"""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import BatchedCSROperator, CSRMatrix
from repro.sparse.csr import structure_fingerprint
from tests.conftest import random_dense


def poisson_band(n: int, dtype=np.float32) -> CSRMatrix:
    """1-D Poisson operator: takes the dia kernel plan."""
    dense = (
        2.0 * np.eye(n)
        - np.eye(n, k=1)
        - np.eye(n, k=-1)
    )
    return CSRMatrix.from_dense(dense.astype(dtype))


def random_csr(rng, n: int, dtype=np.float32) -> CSRMatrix:
    """Random-pattern matrix with empty rows: takes the csr plan."""
    dense = random_dense(rng, n, n, density=0.08)
    dense[n // 2] = 0.0  # force an empty row (masked reduceat path)
    return CSRMatrix.from_dense(dense.astype(dtype))


@pytest.mark.parametrize("k", [1, 2, 7])
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestMatvecBatchBitIdentity:
    def test_dia_plan(self, rng, k, dtype):
        matrix = poisson_band(64, dtype)
        assert matrix._spmv_plan()[0] == "dia"
        block = rng.standard_normal((k, 64)).astype(dtype)
        batched = matrix.matvec_batch(block)
        for row in range(k):
            assert np.array_equal(batched[row], matrix.matvec(block[row]))

    def test_csr_plan(self, rng, k, dtype):
        matrix = random_csr(rng, 80, dtype)
        assert matrix._spmv_plan()[0] == "csr"
        block = rng.standard_normal((k, 80)).astype(dtype)
        batched = matrix.matvec_batch(block)
        for row in range(k):
            assert np.array_equal(batched[row], matrix.matvec(block[row]))

    def test_rmatvec_batch(self, rng, k, dtype):
        matrix = random_csr(rng, 60, dtype)
        block = rng.standard_normal((k, 60)).astype(dtype)
        batched = matrix.rmatvec_batch(block)
        for row in range(k):
            assert np.array_equal(batched[row], matrix.rmatvec(block[row]))


class TestMatvecBatchEdges:
    def test_empty_matrix(self):
        matrix = CSRMatrix((3, 3), [0, 0, 0, 0], [], [])
        block = np.ones((2, 3), dtype=np.float32)
        result = matrix.matvec_batch(block)
        assert result.shape == (2, 3)
        assert not result.any()

    def test_zero_k(self):
        matrix = poisson_band(8)
        result = matrix.matvec_batch(np.empty((0, 8), dtype=np.float32))
        assert result.shape == (0, 8)

    def test_shape_rejected(self):
        matrix = poisson_band(8)
        with pytest.raises(ShapeMismatchError, match="matvec_batch"):
            matrix.matvec_batch(np.ones((2, 9), dtype=np.float32))
        with pytest.raises(ShapeMismatchError, match="matvec_batch"):
            matrix.matvec_batch(np.ones(8, dtype=np.float32))

    def test_interleaved_batched_and_single_calls(self, rng):
        """Batched and single kernels on one matrix share the cache dict
        but not workspaces: interleaving must not corrupt either."""
        matrix = random_csr(rng, 50)
        block = rng.standard_normal((3, 50)).astype(np.float32)
        expected_single = [matrix.matvec(block[row]) for row in range(3)]
        expected_batch = matrix.matvec_batch(block).copy()
        for _ in range(3):
            single = matrix.matvec(block[0])
            batched = matrix.matvec_batch(block)
            assert np.array_equal(single, expected_single[0])
            assert np.array_equal(batched, expected_batch)
        for row in range(3):
            assert np.array_equal(expected_batch[row], expected_single[row])

    def test_results_do_not_alias_workspace(self, rng):
        """A later batched call may not clobber an earlier result."""
        matrix = poisson_band(32)
        first_input = rng.standard_normal((2, 32)).astype(np.float32)
        first = matrix.matvec_batch(first_input)
        snapshot = first.copy()
        matrix.matvec_batch(rng.standard_normal((2, 32)).astype(np.float32))
        assert np.array_equal(first, snapshot)


class TestBatchedCSROperator:
    def _stack(self, rng, n=48, k=4):
        base = random_csr(rng, n)
        mats = [base] + [
            base.with_data(
                (base.data * (1.0 + 0.1 * rng.standard_normal(base.nnz)))
                .astype(np.float32)
            )
            for _ in range(k - 1)
        ]
        return mats

    def test_rows_match_per_matrix_matvec(self, rng):
        mats = self._stack(rng)
        op = BatchedCSROperator(mats)
        block = rng.standard_normal((len(mats), 48)).astype(np.float32)
        result = op.matvec(block)
        for row, matrix in enumerate(mats):
            assert np.array_equal(result[row], matrix.matvec(block[row]))

    def test_dia_rows_match_per_matrix_matvec(self, rng):
        base = poisson_band(40)
        mats = [base] + [
            base.with_data(
                (base.data * (1.0 + 0.1 * rng.standard_normal(base.nnz)))
                .astype(np.float32)
            )
            for _ in range(3)
        ]
        op = BatchedCSROperator(mats)
        block = rng.standard_normal((len(mats), 40)).astype(np.float32)
        result = op.matvec(block)
        for row, matrix in enumerate(mats):
            assert np.array_equal(result[row], matrix.matvec(block[row]))

    def test_take_compacts_to_surviving_rows(self, rng):
        mats = self._stack(rng)
        op = BatchedCSROperator(mats)
        keep = np.array([0, 2], dtype=np.intp)
        sub = op.take(keep)
        assert sub.k == 2
        block = rng.standard_normal((2, 48)).astype(np.float32)
        result = sub.matvec(block)
        assert np.array_equal(result[0], mats[0].matvec(block[0]))
        assert np.array_equal(result[1], mats[2].matvec(block[1]))

    def test_pattern_mismatch_rejected(self, rng):
        a = random_csr(rng, 30)
        b = random_csr(rng, 30)
        assert structure_fingerprint(a) != structure_fingerprint(b)
        with pytest.raises(SparseFormatError, match="pattern"):
            BatchedCSROperator([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(SparseFormatError, match="at least one"):
            BatchedCSROperator([])
