"""Property-based tests on the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import COOMatrix, CSRMatrix
from repro.sparse.properties import is_symmetric
from repro.sparse.stats import partition_row_sets


@st.composite
def dense_matrices(draw, max_dim=12, square=False):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = n_rows if square else draw(st.integers(1, max_dim))
    values = draw(
        arrays(
            np.float64,
            (n_rows, n_cols),
            elements=st.floats(-10, 10, allow_nan=False).map(
                lambda v: 0.0 if abs(v) < 2.0 else v  # induce sparsity
            ),
        )
    )
    return values


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_dense_roundtrip(dense):
    matrix = CSRMatrix.from_dense(dense)
    np.testing.assert_array_equal(matrix.to_dense(), dense)


@given(dense_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_matvec_agrees_with_dense(dense, seed):
    matrix = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed).standard_normal(dense.shape[1])
    np.testing.assert_allclose(matrix.matvec(x), dense @ x, rtol=1e-9, atol=1e-9)


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(dense):
    matrix = CSRMatrix.from_dense(dense)
    np.testing.assert_array_equal(
        matrix.transpose().transpose().to_dense(), dense
    )


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_rmatvec_is_transpose_matvec(dense):
    matrix = CSRMatrix.from_dense(dense)
    y = np.arange(dense.shape[0], dtype=np.float64)
    np.testing.assert_allclose(
        matrix.rmatvec(y), matrix.transpose().matvec(y), rtol=1e-12
    )


@given(dense_matrices(square=True))
@settings(max_examples=60, deadline=None)
def test_symmetrized_matrix_is_symmetric(dense):
    matrix = CSRMatrix.from_dense(dense + dense.T)
    assert is_symmetric(matrix)


@given(dense_matrices(square=True))
@settings(max_examples=60, deadline=None)
def test_diagonal_plus_offdiagonal_reconstructs(dense):
    matrix = CSRMatrix.from_dense(dense)
    rebuilt = matrix.without_diagonal().to_dense() + np.diag(matrix.diagonal())
    np.testing.assert_array_equal(rebuilt, dense)


@given(
    st.lists(
        st.tuples(
            st.integers(0, 7),
            st.integers(0, 7),
            st.floats(-5, 5, allow_nan=False),
        ),
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_coo_canonical_preserves_dense_value(triplets):
    rows = np.array([t[0] for t in triplets], dtype=np.int64)
    cols = np.array([t[1] for t in triplets], dtype=np.int64)
    vals = np.array([t[2] for t in triplets])
    coo = COOMatrix((8, 8), rows, cols, vals)
    np.testing.assert_allclose(
        coo.canonical().to_dense(), coo.to_dense(), rtol=1e-12, atol=1e-12
    )


@given(st.integers(1, 5000), st.integers(1, 256))
@settings(max_examples=100, deadline=None)
def test_partition_invariants(n_rows, rate):
    bounds = partition_row_sets(n_rows, rate)
    assert len(bounds) == min(rate, n_rows)
    assert bounds[0][0] == 0 and bounds[-1][1] == n_rows
    sizes = [hi - lo for lo, hi in bounds]
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == n_rows
