"""Tests for the pluggable kernel-substrate registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownNameError
from repro.sparse import CSRMatrix
from repro.sparse.substrate import (
    NumpySubstrate,
    active_substrate,
    available_substrates,
    register_substrate,
    set_substrate,
    use_substrate,
)


def _numba_installed() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class TestRegistry:
    def test_numpy_and_numba_are_registered(self):
        names = available_substrates()
        assert "numpy" in names
        assert "numba" in names

    def test_default_is_numpy(self):
        assert active_substrate().name == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(UnknownNameError, match="unknown kernel substrate"):
            set_substrate("opencl")

    def test_numba_without_package_raises_configuration_error(self):
        if _numba_installed():
            pytest.skip("numba is installed; the import guard cannot fire")
        with pytest.raises(ConfigurationError, match="numba"):
            set_substrate("numba")
        # A failed selection must not leave the registry broken.
        assert active_substrate().name == "numpy"

    def test_use_substrate_restores_previous(self):
        register_substrate("test-dummy", NumpySubstrate)
        try:
            before = active_substrate().name
            with use_substrate("test-dummy") as substrate:
                assert substrate is active_substrate()
            assert active_substrate().name == before
        finally:
            from repro.sparse import substrate as module

            module._REGISTRY.pop("test-dummy", None)

    def test_use_substrate_restores_after_exception(self):
        register_substrate("test-dummy", NumpySubstrate)
        try:
            before = active_substrate().name
            with pytest.raises(RuntimeError):
                with use_substrate("test-dummy"):
                    raise RuntimeError("boom")
            assert active_substrate().name == before
        finally:
            from repro.sparse import substrate as module

            module._REGISTRY.pop("test-dummy", None)


class TestSubstrateRouting:
    def test_matvec_routes_through_active_substrate(self, rng):
        """A recording substrate sees the kernel stages the CSR kernels
        delegate; the product stays bit-identical to the default."""
        calls = []
        reference = NumpySubstrate()

        class Recording(NumpySubstrate):
            name = "recording"

            def csr_products(self, data, x, indices, out):
                calls.append("csr_products")
                reference.csr_products(data, x, indices, out)

            def dia_update(self, result, x, offset, lo, hi, weights, scratch):
                calls.append("dia_update")
                reference.dia_update(
                    result, x, offset, lo, hi, weights, scratch
                )

        dense = np.where(
            rng.random((30, 30)) < 0.2, rng.standard_normal((30, 30)), 0.0
        )
        matrix = CSRMatrix.from_dense(dense.astype(np.float32))
        x = rng.standard_normal(30).astype(np.float32)
        expected = matrix.matvec(x)
        register_substrate("recording", Recording)
        try:
            with use_substrate("recording"):
                routed = matrix.matvec(x)
        finally:
            from repro.sparse import substrate as module

            module._REGISTRY.pop("recording", None)
        assert calls  # the substrate actually served the call
        assert np.array_equal(routed, expected)
