"""Tests for the COO build format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import COOMatrix


class TestConstruction:
    def test_valid_triplets(self):
        coo = COOMatrix((3, 3), [0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
        assert coo.nnz == 3
        assert coo.shape == (3, 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(SparseFormatError, match="equal length"):
            COOMatrix((3, 3), [0, 1], [1, 2, 0], [1.0, 2.0, 3.0])

    def test_row_out_of_bounds_rejected(self):
        with pytest.raises(SparseFormatError, match="row index"):
            COOMatrix((3, 3), [0, 3], [1, 2], [1.0, 2.0])

    def test_negative_row_rejected(self):
        with pytest.raises(SparseFormatError, match="row index"):
            COOMatrix((3, 3), [0, -1], [1, 2], [1.0, 2.0])

    def test_column_out_of_bounds_rejected(self):
        with pytest.raises(SparseFormatError, match="column index"):
            COOMatrix((3, 3), [0, 1], [1, 5], [1.0, 2.0])

    def test_negative_shape_rejected(self):
        with pytest.raises(SparseFormatError, match="negative shape"):
            COOMatrix((-1, 3), [], [], [])

    def test_empty_matrix(self):
        coo = COOMatrix((5, 5), [], [], [])
        assert coo.nnz == 0
        assert np.all(coo.to_dense() == 0)


class TestCanonical:
    def test_duplicates_are_summed(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0])
        canon = coo.canonical()
        assert canon.nnz == 2
        dense = canon.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 1.0

    def test_cancelling_duplicates_are_dropped(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [2.0, -2.0])
        assert coo.canonical().nnz == 0

    def test_sorted_by_row_then_column(self):
        coo = COOMatrix((3, 3), [2, 0, 1, 0], [0, 2, 1, 0], [1, 2, 3, 4])
        canon = coo.canonical()
        assert list(canon.rows) == [0, 0, 1, 2]
        assert list(canon.cols) == [0, 2, 1, 0]

    def test_canonical_of_empty_is_identity(self):
        coo = COOMatrix((2, 2), [], [], [])
        assert coo.canonical() is coo


class TestConversions:
    def test_dense_roundtrip(self, rng):
        dense = rng.standard_normal((6, 8)) * (rng.random((6, 8)) < 0.4)
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_from_dense_rejects_non_2d(self):
        with pytest.raises(ShapeMismatchError, match="2-D"):
            COOMatrix.from_dense(np.zeros(4))

    def test_to_csr_matches_dense(self, rng):
        dense = rng.standard_normal((7, 5)) * (rng.random((7, 5)) < 0.5)
        csr = COOMatrix.from_dense(dense).to_csr()
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_to_csr_merges_duplicates(self):
        coo = COOMatrix((2, 3), [0, 0, 1], [2, 2, 0], [1.0, 1.0, 5.0])
        csr = coo.to_csr()
        assert csr.nnz == 2
        assert csr.to_dense()[0, 2] == 2.0
