"""Structure-cache contract of :class:`CSRMatrix`.

The hot-path overhaul made matrices cache derived structure (row ids,
row lengths, diagonal, transpose, SpMV kernel plan, scratch buffers).
These tests pin the contract: caching must be invisible — bit-identical
results, fresh caches on slices, no aliasing of kernel scratch — and the
transpose-backed ``rmatvec`` must match the old scatter implementation
to a few ULP of the accumulated magnitude across dtypes.
"""

import numpy as np
import pytest

from repro.datasets.generators import sdd_matrix
from repro.datasets.pde import poisson_2d
from repro.sparse.csr import CSRMatrix


def fresh_copy(matrix: CSRMatrix) -> CSRMatrix:
    """A structurally identical matrix with an empty cache."""
    return CSRMatrix(
        matrix.shape,
        matrix.indptr.copy(),
        matrix.indices.copy(),
        matrix.data.copy(),
    )


def legacy_rmatvec(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """The seed's scatter-based ``A.T @ x`` (reference implementation)."""
    out_dtype = np.result_type(matrix.data, x)
    row_of = np.repeat(np.arange(matrix.n_rows), np.diff(matrix.indptr))
    result = np.zeros(matrix.n_cols, dtype=out_dtype)
    np.add.at(result, matrix.indices, matrix.data * x[row_of])
    return result


@pytest.fixture(scope="module")
def matrix() -> CSRMatrix:
    return sdd_matrix(256, 6.0, seed=11)


class TestCacheParity:
    """Cached and freshly-constructed matrices agree bit-for-bit."""

    def test_matvec_bit_identical_and_stable(self, matrix):
        x = np.random.default_rng(0).standard_normal(matrix.n_cols)
        warm = matrix.matvec(x)  # builds plan + workspace
        again = matrix.matvec(x)
        cold = fresh_copy(matrix).matvec(x)
        np.testing.assert_array_equal(warm, cold)
        np.testing.assert_array_equal(again, cold)

    def test_rmatvec_bit_identical(self, matrix):
        x = np.random.default_rng(1).standard_normal(matrix.n_rows)
        warm = matrix.rmatvec(x)
        np.testing.assert_array_equal(warm, fresh_copy(matrix).rmatvec(x))
        np.testing.assert_array_equal(warm, matrix.rmatvec(x))

    def test_diagonal_bit_identical(self, matrix):
        np.testing.assert_array_equal(
            matrix.diagonal(), fresh_copy(matrix).diagonal()
        )

    def test_transpose_bit_identical(self, matrix):
        cached = matrix.transpose()
        fresh = fresh_copy(matrix).transpose()
        assert cached.structurally_equal(fresh)
        np.testing.assert_array_equal(cached.data, fresh.data)

    def test_transpose_is_cached_with_backlink(self, matrix):
        t = matrix.transpose()
        assert matrix.transpose() is t
        assert t.transpose() is matrix

    def test_without_diagonal_is_cached(self, matrix):
        off = matrix.without_diagonal()
        assert matrix.without_diagonal() is off
        np.testing.assert_array_equal(
            off.to_dense(), fresh_copy(matrix).without_diagonal().to_dense()
        )

    def test_cached_vectors_are_read_only(self, matrix):
        for view in (
            matrix.row_lengths(),
            matrix.row_ids(),
            matrix.diagonal(),
        ):
            with pytest.raises(ValueError):
                view[0] = 0

    def test_workspace_never_aliases_results(self, matrix):
        rng = np.random.default_rng(2)
        first = matrix.matvec(rng.standard_normal(matrix.n_cols))
        snapshot = first.copy()
        matrix.matvec(rng.standard_normal(matrix.n_cols))
        np.testing.assert_array_equal(first, snapshot)


class TestRmatvecUlpParity:
    """Transpose-backed rmatvec vs the old scatter, across dtypes.

    Reordered summation cannot be bitwise-stable, but every element must
    stay within a few ULP of the accumulated magnitude ``|A|.T @ |x|``
    (the natural error scale of a reordered sum).
    """

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matches_scatter_to_the_ulp(self, dtype):
        matrix = sdd_matrix(512, 8.0, seed=3).astype(dtype)
        magnitude = matrix.with_data(np.abs(matrix.data))
        rng = np.random.default_rng(7)
        eps = float(np.finfo(dtype).eps)
        for _ in range(5):
            x = rng.standard_normal(matrix.n_rows).astype(dtype)
            new = matrix.rmatvec(x).astype(np.float64)
            old = legacy_rmatvec(matrix, x).astype(np.float64)
            scale = magnitude.rmatvec(np.abs(x)).astype(np.float64)
            bound = 4.0 * eps * np.maximum(scale, float(np.finfo(dtype).tiny))
            assert np.all(np.abs(new - old) <= bound)


class TestRowSliceFreshCache:
    """Satellite regression: slices of cached matrices are fully detached."""

    def test_slice_of_warm_matrix_is_correct(self, matrix):
        # Warm every cache entry first.
        matrix.row_ids()
        matrix.diagonal()
        matrix.transpose()
        matrix.matvec(np.zeros(matrix.n_cols))
        sliced = matrix.row_slice(3, 97)
        np.testing.assert_array_equal(
            sliced.to_dense(), matrix.to_dense()[3:97]
        )

    def test_slice_cache_is_independent(self, matrix):
        sliced = matrix.row_slice(0, 50)
        assert sliced._cache == {}
        x = np.random.default_rng(3).standard_normal(matrix.n_cols)
        expected = fresh_copy(matrix).matvec(x)[:50]
        np.testing.assert_array_equal(sliced.matvec(x), expected)

    def test_slice_owns_its_arrays(self, matrix):
        sliced = matrix.row_slice(1, 4)
        assert sliced.indices.base is None
        assert sliced.data.base is None


class TestBandedFastPath:
    """The DIA kernel fires only for densely banded operators."""

    def test_poisson_takes_banded_path(self):
        operator = poisson_2d(16).matrix
        assert operator._spmv_plan()[0] == "dia"

    def test_random_structure_takes_csr_path(self, matrix):
        assert matrix._spmv_plan()[0] == "csr"

    def test_banded_matvec_matches_dense(self):
        operator = poisson_2d(12).matrix
        x = np.random.default_rng(4).standard_normal(operator.n_cols)
        np.testing.assert_allclose(
            operator.matvec(x), operator.to_dense() @ x, rtol=1e-12
        )

    def test_banded_rectangular_offsets(self):
        dense = np.zeros((3, 5))
        dense[0, 1] = 2.0
        dense[1, 2] = 3.0
        dense[2, 3] = 4.0
        operator = CSRMatrix.from_dense(dense)
        x = np.arange(5.0)
        np.testing.assert_allclose(operator.matvec(x), dense @ x)

    def test_empty_rows_stay_zero(self):
        operator = CSRMatrix(
            (4, 4),
            np.array([0, 1, 1, 1, 2]),
            np.array([0, 3]),
            np.array([2.0, 5.0]),
        )
        x = np.ones(4)
        np.testing.assert_array_equal(
            operator.matvec(x), np.array([2.0, 0.0, 0.0, 5.0])
        )


class TestWithData:
    def test_shares_structure_replaces_values(self, matrix):
        doubled = matrix.with_data(matrix.data * 2.0)
        assert doubled.indptr is matrix.indptr
        assert doubled.indices is matrix.indices
        np.testing.assert_array_equal(doubled.data, matrix.data * 2.0)

    def test_rejects_wrong_length(self, matrix):
        from repro.errors import SparseFormatError

        with pytest.raises(SparseFormatError):
            matrix.with_data(np.zeros(matrix.nnz + 1))
