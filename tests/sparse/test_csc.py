"""Tests for the CSC format and its role in the symmetry check."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import CSCMatrix, CSRMatrix
from tests.conftest import random_dense


class TestConstruction:
    def test_indptr_wrong_length(self):
        with pytest.raises(SparseFormatError, match="indptr"):
            CSCMatrix((2, 2), [0, 1], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(SparseFormatError, match="start at 0"):
            CSCMatrix((2, 2), [1, 1, 2], [0], [1.0])

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            CSCMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_row_out_of_bounds(self):
        with pytest.raises(SparseFormatError, match="row index"):
            CSCMatrix((2, 2), [0, 1, 2], [0, 2], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(SparseFormatError, match="mismatch"):
            CSCMatrix((2, 2), [0, 1, 2], [0], [1.0])


class TestConversions:
    def test_column_lengths(self, rng):
        dense = random_dense(rng, 6, 4, density=0.5)
        csc = CSRMatrix.from_dense(dense).to_csc()
        expected = (dense != 0).sum(axis=0)
        np.testing.assert_array_equal(csc.column_lengths(), expected)

    def test_csr_roundtrip(self, rng):
        dense = random_dense(rng, 8, 8, density=0.3)
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix.to_csc().to_csr().to_dense(), dense)


class TestMatchesCSR:
    """The Matrix Structure unit's symmetry comparison."""

    def test_symmetric_matrix_matches(self, rng):
        dense = random_dense(rng, 10, 10, density=0.2)
        dense = dense + dense.T
        matrix = CSRMatrix.from_dense(dense)
        assert matrix.to_csc().matches_csr(matrix)

    def test_nonsymmetric_values_do_not_match(self):
        dense = np.array([[1.0, 2.0], [3.0, 4.0]])
        matrix = CSRMatrix.from_dense(dense)
        assert not matrix.to_csc().matches_csr(matrix)

    def test_structurally_symmetric_numerically_not(self):
        # Same sparsity pattern both ways, different values: must fail.
        dense = np.array([[1.0, 2.0], [2.5, 1.0]])
        matrix = CSRMatrix.from_dense(dense)
        assert not matrix.to_csc().matches_csr(matrix)

    def test_tolerance_accepts_tiny_asymmetry(self):
        dense = np.array([[1.0, 2.0], [2.0 * (1 + 1e-9), 1.0]])
        matrix = CSRMatrix.from_dense(dense)
        assert matrix.to_csc().matches_csr(matrix, rtol=1e-6)
        assert not matrix.to_csc().matches_csr(matrix, rtol=1e-12)

    def test_shape_mismatch_fails(self, rng):
        a = CSRMatrix.from_dense(np.eye(3))
        b = CSRMatrix.from_dense(np.eye(4))
        assert not a.to_csc().matches_csr(b)
