"""Tests for the Sliced-ELL format and its plan correspondence."""

import numpy as np
import pytest

from repro import Acamar, AcamarConfig
from repro.datasets.generators import sdd_matrix
from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CSRMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from tests.conftest import random_dense


@pytest.fixture
def matrix(rng):
    return CSRMatrix.from_dense(random_dense(rng, 40, 40, density=0.2))


class TestConstruction:
    def test_slices_must_cover_rows(self, matrix):
        sell = SlicedELLMatrix.from_csr(matrix, slice_rows=8)
        with pytest.raises(SparseFormatError, match="cover"):
            SlicedELLMatrix(matrix.shape, sell.slices[1:])

    def test_slice_gaps_rejected(self, matrix):
        sell = SlicedELLMatrix.from_csr(matrix, slice_rows=8)
        gapped = [sell.slices[0]] + sell.slices[2:]
        # replace stop of first to create a hole
        with pytest.raises(SparseFormatError):
            SlicedELLMatrix(matrix.shape, gapped)

    def test_invalid_slice_rows(self, matrix):
        with pytest.raises(SparseFormatError):
            SlicedELLMatrix.from_csr(matrix, slice_rows=0)

    def test_empty_matrix(self):
        empty = CSRMatrix((0, 5), [0], [], [])
        sell = SlicedELLMatrix((0, 5), [])
        assert empty.nnz == 0
        assert sell.nnz == 0
        assert sell.padding_fraction == 0.0


class TestRoundtripAndMatvec:
    def test_csr_roundtrip(self, matrix):
        sell = SlicedELLMatrix.from_csr(matrix, slice_rows=8)
        assert sell.to_csr().allclose(matrix)

    def test_matvec_matches_csr(self, matrix, rng):
        sell = SlicedELLMatrix.from_csr(matrix, slice_rows=16)
        x = rng.standard_normal(matrix.n_cols)
        np.testing.assert_allclose(sell.matvec(x), matrix.matvec(x), rtol=1e-12)

    def test_matvec_shape_checked(self, matrix):
        sell = SlicedELLMatrix.from_csr(matrix)
        with pytest.raises(ShapeMismatchError):
            sell.matvec(np.ones(7))

    def test_sell_pads_less_than_plain_ell(self, rng):
        """The whole point of slicing: locality cuts padding."""
        from repro.sparse import ELLMatrix

        matrix = sdd_matrix(512, 8.0, seed=66)  # correlated row lengths
        sell = SlicedELLMatrix.from_csr(matrix, slice_rows=16)
        ell = ELLMatrix.from_csr(matrix)
        assert sell.padding_fraction < ell.padding_fraction


class TestPlanCorrespondence:
    def test_plan_slices_match_row_sets(self):
        matrix = sdd_matrix(512, 8.0, seed=67)
        plan = Acamar(AcamarConfig(sampling_rate=16)).plan(matrix)
        sell = SlicedELLMatrix.from_plan(matrix, plan)
        assert len(sell.slices) == len(plan.sets)
        for s, row_set in zip(sell.slices, plan.sets):
            assert (s.start_row, s.stop_row) == (
                row_set.start_row, row_set.stop_row
            )
            assert s.width % row_set.unroll == 0

    def test_plan_storage_roundtrips(self):
        matrix = sdd_matrix(256, 6.0, seed=68)
        plan = Acamar().plan(matrix)
        sell = SlicedELLMatrix.from_plan(matrix, plan)
        assert sell.to_csr().allclose(matrix)

    def test_padding_tracks_cost_model_within_chunking_slack(self):
        """SELL-from-plan padding ≈ the cost model's provisioned waste.

        They are not identical — the cost model provisions per *row*
        chunk count while the slice pads every row to the slice's widest
        chunk count — but they must agree in magnitude and ordering.
        """
        from repro.fpga import ALVEO_U55C, spmv_sweep

        matrix = sdd_matrix(512, 8.0, seed=69)
        plan = Acamar().plan(matrix)
        sell = SlicedELLMatrix.from_plan(matrix, plan)
        report = spmv_sweep(
            matrix.row_lengths(), plan.unroll_for_rows, ALVEO_U55C
        )
        model_waste = 1.0 - report.occupancy
        assert sell.padding_fraction >= model_waste - 1e-9
        assert sell.padding_fraction < model_waste + 0.35
