"""Tests for RCM reordering."""

import numpy as np
import pytest

from repro.datasets import poisson_2d
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError
from repro.sparse import CSRMatrix
from repro.sparse.reorder import (
    bandwidth,
    permute_symmetric,
    permute_vector,
    rcm_permutation,
    rcm_reorder,
    unpermute_vector,
)


class TestPermutationMachinery:
    def test_permutation_is_valid(self):
        matrix = sdd_matrix(100, 5.0, seed=42)
        perm = rcm_permutation(matrix)
        assert sorted(perm.tolist()) == list(range(100))

    def test_permute_symmetric_matches_dense(self, rng):
        from tests.conftest import random_dense

        dense = random_dense(rng, 12, 12, density=0.3)
        matrix = CSRMatrix.from_dense(dense)
        perm = rng.permutation(12)
        permuted = permute_symmetric(matrix, perm)
        np.testing.assert_allclose(
            permuted.to_dense(), dense[np.ix_(perm, perm)]
        )

    def test_invalid_perm_rejected(self, small_csr):
        with pytest.raises(ConfigurationError, match="permutation"):
            permute_symmetric(small_csr, np.array([0, 0, 1, 2]))

    def test_rectangular_rejected(self):
        with pytest.raises(ConfigurationError, match="square"):
            rcm_permutation(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_vector_roundtrip(self, rng):
        perm = rng.permutation(20)
        vector = rng.standard_normal(20)
        np.testing.assert_array_equal(
            unpermute_vector(permute_vector(vector, perm), perm), vector
        )

    def test_empty_matrix(self):
        empty = CSRMatrix((0, 0), [0], [], [])
        assert len(rcm_permutation(empty)) == 0
        assert bandwidth(empty) == 0


class TestBandwidthReduction:
    def test_rcm_reduces_bandwidth_of_shuffled_poisson(self, rng):
        """A scrambled banded matrix must come back to a narrow band."""
        problem = poisson_2d(12)
        shuffle = rng.permutation(problem.n)
        scrambled = permute_symmetric(problem.matrix, shuffle)
        reordered, _ = rcm_reorder(scrambled)
        assert bandwidth(reordered) < bandwidth(scrambled) / 2

    def test_rcm_on_already_banded_keeps_band_small(self):
        problem = poisson_2d(10)
        reordered, _ = rcm_reorder(problem.matrix)
        assert bandwidth(reordered) <= bandwidth(problem.matrix) * 1.5

    def test_handles_disconnected_components(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[3, 4] = dense[4, 3] = 1.0
        np.fill_diagonal(dense, 2.0)
        matrix = CSRMatrix.from_dense(dense)
        perm = rcm_permutation(matrix)
        assert sorted(perm.tolist()) == list(range(6))


class TestSolveEquivalence:
    def test_reordered_solve_recovers_original_solution(self, rng):
        """P A P^T is a similarity: the solve is exactly equivalent."""
        from repro.solvers import ConjugateGradientSolver

        problem = poisson_2d(10)
        shuffle = rng.permutation(problem.n)
        scrambled = permute_symmetric(problem.matrix, shuffle)
        b_scrambled = permute_vector(np.asarray(problem.b), shuffle)

        reordered, perm = rcm_reorder(scrambled)
        b_reordered = permute_vector(b_scrambled, perm).astype(np.float32)
        result = ConjugateGradientSolver().solve(reordered, b_reordered)
        assert result.converged
        x_scrambled = unpermute_vector(result.x, perm)
        x_original = unpermute_vector(x_scrambled, shuffle)
        assert (
            np.linalg.norm(x_original - problem.x_true)
            / np.linalg.norm(problem.x_true)
            < 1e-2
        )

    def test_reordering_improves_plan_on_scrambled_matrix(self, rng):
        """The Acamar tie-in: RCM restores the row-length locality the
        Row Length Trace needs, cutting reconfiguration events."""
        from repro import Acamar
        from repro.core import unsmoothed_event_count

        base = sdd_matrix(1024, 8.0, seed=43)  # correlated lengths
        shuffle = rng.permutation(1024)
        scrambled = permute_symmetric(base, shuffle)
        reordered, _ = rcm_reorder(scrambled)
        acamar = Acamar()
        from repro.fpga import mean_underutilization

        plan_scrambled = acamar.plan(scrambled)
        plan_reordered = acamar.plan(reordered)
        ru_scrambled = mean_underutilization(
            scrambled.row_lengths(), plan_scrambled.unroll_for_rows
        )
        ru_reordered = mean_underutilization(
            reordered.row_lengths(), plan_reordered.unroll_for_rows
        )
        # Reordering clusters similar rows: utilization must not degrade
        # and generally improves.
        assert ru_reordered <= ru_scrambled + 0.02
