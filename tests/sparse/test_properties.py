"""Tests for structural-property analysis (Eq. 1-4 checks)."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix
from repro.sparse.properties import (
    analyze_properties,
    diagonal_dominance_margin,
    estimate_spectral_radius,
    is_strictly_diagonally_dominant,
    is_symmetric,
    jacobi_iteration_spectral_radius,
    positive_definite_probe,
)


class TestDiagonalDominance:
    def test_strictly_dominant(self, small_csr):
        assert is_strictly_diagonally_dominant(small_csr)

    def test_weakly_dominant_is_rejected(self):
        # Row sums equal the diagonal: weak, not strict.
        dense = np.array([[2.0, -2.0], [-2.0, 2.0]])
        assert not is_strictly_diagonally_dominant(CSRMatrix.from_dense(dense))

    def test_zero_diagonal_rejected(self):
        dense = np.array([[0.0, 1.0], [1.0, 3.0]])
        assert not is_strictly_diagonally_dominant(CSRMatrix.from_dense(dense))

    def test_negative_diagonal_can_dominate(self):
        dense = np.array([[-3.0, 1.0], [1.0, -3.0]])
        assert is_strictly_diagonally_dominant(CSRMatrix.from_dense(dense))

    def test_rectangular_is_rejected(self):
        dense = np.array([[3.0, 1.0, 0.0], [1.0, 3.0, 0.0]])
        assert not is_strictly_diagonally_dominant(CSRMatrix.from_dense(dense))

    def test_margin_values(self, small_csr):
        margin = diagonal_dominance_margin(small_csr)
        np.testing.assert_allclose(margin, [3.0, 2.0, 2.0, 3.0])


class TestSymmetry:
    def test_symmetric(self, small_csr):
        assert is_symmetric(small_csr)

    def test_nonsymmetric_values(self):
        dense = np.array([[1.0, 2.0], [3.0, 1.0]])
        assert not is_symmetric(CSRMatrix.from_dense(dense))

    def test_nonsymmetric_pattern(self):
        dense = np.array([[1.0, 2.0], [0.0, 1.0]])
        assert not is_symmetric(CSRMatrix.from_dense(dense))

    def test_rectangular_rejected(self):
        dense = np.ones((2, 3))
        assert not is_symmetric(CSRMatrix.from_dense(dense))


class TestDefinitenessProbe:
    def test_spd_passes(self, spd_system):
        matrix, _, _ = spd_system
        assert positive_definite_probe(matrix)

    def test_negative_definite_fails(self):
        matrix = CSRMatrix.from_dense(-np.eye(10))
        assert not positive_definite_probe(matrix)

    def test_indefinite_fails(self):
        matrix = CSRMatrix.from_dense(np.diag([1.0] * 10 + [-1.0] * 10))
        assert not positive_definite_probe(matrix)

    def test_rectangular_rejected(self):
        assert not positive_definite_probe(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_deterministic_given_seed(self, spd_system):
        matrix, _, _ = spd_system
        assert positive_definite_probe(matrix, seed=3) == positive_definite_probe(
            matrix, seed=3
        )


class TestSpectralRadius:
    def test_diagonal_matrix_exact(self):
        diag = np.diag([0.5, -2.0, 1.0])

        def matvec(x):
            return diag @ x

        radius = estimate_spectral_radius(matvec, 3, n_iters=500)
        assert radius == pytest.approx(2.0, rel=1e-3)

    def test_zero_operator(self):
        radius = estimate_spectral_radius(lambda x: np.zeros_like(x), 4)
        assert radius == 0.0

    def test_jacobi_radius_for_sdd_below_one(self, small_csr):
        assert jacobi_iteration_spectral_radius(small_csr) < 1.0

    def test_jacobi_radius_infinite_for_zero_diagonal(self):
        dense = np.array([[0.0, 1.0], [1.0, 2.0]])
        assert jacobi_iteration_spectral_radius(
            CSRMatrix.from_dense(dense)
        ) == np.inf

    def test_jacobi_radius_matches_dense_eigenvalues(self, rng):
        from tests.conftest import random_dense

        dense = random_dense(rng, 40, 40, density=0.2)
        np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 0.5)
        matrix = CSRMatrix.from_dense(dense)
        estimated = jacobi_iteration_spectral_radius(matrix, n_iters=800)
        diag = np.diag(dense)
        iteration_matrix = (dense - np.diag(diag)) / diag[:, None]
        exact = np.abs(np.linalg.eigvals(iteration_matrix)).max()
        assert estimated == pytest.approx(exact, rel=0.05)


class TestAnalyze:
    def test_summary_fields(self, small_csr):
        props = analyze_properties(small_csr)
        assert props.square
        assert props.symmetric
        assert props.strictly_diagonally_dominant
        assert props.nnz == 10
        assert props.density == pytest.approx(10 / 16)

    def test_nonsquare(self):
        props = analyze_properties(CSRMatrix.from_dense(np.ones((2, 3))))
        assert not props.square
        assert not props.symmetric
