"""Tests for the ELLPACK format and its Eq. 5 correspondence."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CSRMatrix, ELLMatrix, padded_slots_for_unroll
from repro.sparse.ell import PAD_COLUMN
from tests.conftest import random_dense


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(SparseFormatError, match="equal-shape"):
            ELLMatrix((2, 2), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(SparseFormatError, match="row count"):
            ELLMatrix((3, 2), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_column_bounds_checked(self):
        columns = np.array([[0, 5]])
        with pytest.raises(SparseFormatError, match="out of bounds"):
            ELLMatrix((1, 3), columns, np.ones((1, 2)))

    def test_nonzero_padding_rejected(self):
        columns = np.array([[0, PAD_COLUMN]])
        values = np.array([[1.0, 2.0]])
        with pytest.raises(SparseFormatError, match="padding"):
            ELLMatrix((1, 3), columns, values)


class TestConversion:
    def test_csr_roundtrip(self, rng):
        dense = random_dense(rng, 10, 8, density=0.3)
        csr = CSRMatrix.from_dense(dense)
        ell = ELLMatrix.from_csr(csr)
        np.testing.assert_allclose(ell.to_csr().to_dense(), dense)

    def test_width_defaults_to_longest_row(self, small_csr):
        ell = ELLMatrix.from_csr(small_csr)
        assert ell.width == 3
        assert ell.nnz == small_csr.nnz

    def test_explicit_wider_width(self, small_csr):
        ell = ELLMatrix.from_csr(small_csr, width=8)
        assert ell.width == 8
        assert ell.nnz == small_csr.nnz

    def test_too_narrow_width_rejected(self, small_csr):
        with pytest.raises(SparseFormatError, match="longest row"):
            ELLMatrix.from_csr(small_csr, width=2)


class TestMatvec:
    def test_matches_csr(self, rng):
        dense = random_dense(rng, 12, 12, density=0.25)
        csr = CSRMatrix.from_dense(dense)
        ell = ELLMatrix.from_csr(csr)
        x = rng.standard_normal(12)
        np.testing.assert_allclose(ell.matvec(x), csr.matvec(x), rtol=1e-12)

    def test_shape_checked(self, small_csr):
        ell = ELLMatrix.from_csr(small_csr)
        with pytest.raises(ShapeMismatchError):
            ell.matvec(np.ones(7))


class TestPaddingAccounting:
    def test_padding_fraction(self, small_csr):
        ell = ELLMatrix.from_csr(small_csr)
        # 10 nnz in a 4x3 padded array.
        assert ell.padding_fraction == pytest.approx(1 - 10 / 12)

    def test_padded_slots_match_cost_model_provisioning(self, rng):
        """ELL-with-block-width == the static design's provisioned MACs."""
        from repro.fpga import ALVEO_U55C, spmv_sweep

        dense = random_dense(rng, 40, 40, density=0.2)
        csr = CSRMatrix.from_dense(dense)
        lengths = csr.row_lengths()
        for unroll in (2, 4, 8):
            slots = padded_slots_for_unroll(lengths, unroll)
            report = spmv_sweep(lengths, unroll, ALVEO_U55C)
            assert slots == report.provisioned_mac_cycles

    def test_padding_grows_with_row_length_variance(self, rng):
        uniform = CSRMatrix.from_dense(np.triu(np.ones((16, 16)), 1)[:, ::-1])
        skewed_dense = np.zeros((16, 16))
        skewed_dense[0, :] = 1.0  # one full row, rest near-empty
        skewed_dense[1:, 0] = 1.0
        skewed = CSRMatrix.from_dense(skewed_dense)
        assert (
            ELLMatrix.from_csr(skewed).padding_fraction
            > ELLMatrix.from_csr(uniform).padding_fraction
        )
