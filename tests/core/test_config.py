"""Tests for AcamarConfig validation and the Initialize unit tables."""

import numpy as np
import pytest

from repro.config import AcamarConfig
from repro.core.initialize import (
    STATIC_INITIALIZE_UNROLL,
    initialize_dense_passes,
    initialize_spmv_count,
)
from repro.errors import ConfigurationError


class TestConfig:
    def test_paper_defaults(self):
        config = AcamarConfig()
        assert config.tolerance == 1e-5
        assert config.dtype == np.float32
        assert config.chunk_size == 4096
        assert config.sampling_rate == 32
        assert config.r_opt == 8
        assert config.msid_tolerance == 0.15
        assert config.setup_iterations == 200

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tolerance", 0.0),
            ("tolerance", -1e-5),
            ("chunk_size", 0),
            ("sampling_rate", 0),
            ("r_opt", -1),
            ("msid_tolerance", -0.1),
            ("max_unroll", 0),
            ("max_iterations", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            AcamarConfig(**{field: value})

    def test_with_overrides(self):
        config = AcamarConfig().with_overrides(sampling_rate=64, r_opt=2)
        assert config.sampling_rate == 64
        assert config.r_opt == 2
        assert config.tolerance == 1e-5  # untouched

    def test_dtype_normalized(self):
        config = AcamarConfig(dtype=np.float64)
        assert config.dtype == np.dtype(np.float64)

    def test_frozen(self):
        config = AcamarConfig()
        with pytest.raises(Exception):
            config.sampling_rate = 5  # type: ignore[misc]


class TestInitializeUnit:
    def test_spmv_counts_match_algorithms(self):
        # Algorithms 2 and 3 compute r0 = b - A x0; Algorithm 1 does not.
        assert initialize_spmv_count("jacobi") == 0
        assert initialize_spmv_count("cg") == 1
        assert initialize_spmv_count("bicgstab") == 1

    def test_unknown_solver_gets_conservative_default(self):
        assert initialize_spmv_count("mystery") == 1
        assert initialize_dense_passes("mystery") == 2

    def test_static_unroll_positive(self):
        assert STATIC_INITIALIZE_UNROLL >= 1

    def test_dense_passes_positive(self):
        for solver in ("jacobi", "cg", "bicgstab", "gauss_seidel", "sor"):
            assert initialize_dense_passes(solver) >= 1


class TestSerialization:
    def test_roundtrip_defaults(self):
        config = AcamarConfig()
        rebuilt = AcamarConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_roundtrip_customized(self):
        config = AcamarConfig(
            sampling_rate=64,
            r_opt=2,
            dtype=np.float64,
            solver_fallback_order=("cg", "gmres"),
            solver_options={"gmres": {"restart": 128}},
            unroll_rounding="ceil",
        )
        rebuilt = AcamarConfig.from_dict(config.to_dict())
        assert rebuilt.sampling_rate == 64
        assert rebuilt.dtype == np.float64
        assert rebuilt.solver_fallback_order == ("cg", "gmres")
        assert rebuilt.solver_options["gmres"]["restart"] == 128
        assert rebuilt.unroll_rounding == "ceil"

    def test_json_roundtrip(self):
        import json

        config = AcamarConfig(sampling_rate=8)
        payload = json.loads(json.dumps(config.to_dict()))
        assert AcamarConfig.from_dict(payload).sampling_rate == 8

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown config keys"):
            AcamarConfig.from_dict({"sampling_rte": 32})

    def test_partial_dict_uses_defaults(self):
        config = AcamarConfig.from_dict({"r_opt": 3})
        assert config.r_opt == 3
        assert config.sampling_rate == 32
