"""Parity tests for the vectorized Resource Decision loop.

The hot-path overhaul replaced the per-set Python loops in the
Fine-Grained Reconfiguration unit with whole-array operations.  Each
test here re-derives the quantity with the seed's scalar formulation and
asserts bitwise equality — the planning numbers feed the cost model and
must not move at all.
"""

import numpy as np
import pytest

from repro.config import AcamarConfig
from repro.core.finegrained import (
    FineGrainedReconfigurationUnit,
    RowLengthTrace,
    quantize_unroll,
)
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def matrix():
    return sdd_matrix(2048, 9.0, seed=21)


def scalar_quantize(value: float, max_unroll: int, mode: str) -> int:
    """The seed's scalar quantizer (round / ceil / floor + clamp)."""
    if mode == "nearest":
        quantized = round(value)
    elif mode == "ceil":
        quantized = int(np.ceil(value))
    else:
        quantized = int(np.floor(value))
    return int(np.clip(quantized, 1, max_unroll))


class TestQuantizeUnrollArray:
    @pytest.mark.parametrize("mode", ["nearest", "ceil", "floor"])
    def test_matches_scalar_loop(self, mode):
        rng = np.random.default_rng(13)
        values = np.concatenate(
            [
                rng.uniform(0.0, 100.0, size=500),
                # Exact halves exercise round-half-to-even parity.
                np.arange(0.5, 80.0, 0.5),
                np.array([0.0, 1.0, 63.5, 64.5, 1e9]),
            ]
        )
        vectorized = quantize_unroll(values, 64, mode)
        assert vectorized.dtype == np.int64
        expected = [scalar_quantize(v, 64, mode) for v in values]
        np.testing.assert_array_equal(vectorized, expected)

    def test_scalar_input_returns_int(self):
        result = quantize_unroll(5.5, 64)
        assert isinstance(result, int)
        assert result == round(5.5)

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigurationError):
            quantize_unroll(np.array([2.0]), 64, mode="stochastic")


class TestTraceVectorized:
    def test_matches_per_set_means(self, matrix):
        trace_unit = RowLengthTrace(sampling_rate=32, chunk_size=4096)
        averages, bounds = trace_unit.trace(matrix)
        lengths = np.diff(matrix.indptr).astype(np.float64)
        expected = np.array([lengths[lo:hi].mean() for lo, hi in bounds])
        np.testing.assert_array_equal(averages, expected)

    def test_empty_matrix_yields_empty_trace(self):
        from repro.sparse.csr import CSRMatrix

        empty = CSRMatrix((0, 0), np.array([0]), np.array([]), np.array([]))
        averages, bounds = RowLengthTrace(32, 4096).trace(empty)
        assert bounds == []
        assert averages.shape == (0,)


class TestPlanVectorized:
    def test_matches_scalar_replan(self, matrix):
        config = AcamarConfig()
        plan = FineGrainedReconfigurationUnit(config).plan(matrix)
        trace_unit = RowLengthTrace(config.sampling_rate, config.chunk_size)
        averages, bounds = trace_unit.trace(matrix)
        expected_raw = [
            scalar_quantize(a, config.max_unroll, config.unroll_rounding)
            for a in averages
        ]
        np.testing.assert_array_equal(plan.raw_unrolls, expected_raw)
        # Reconfigure flags: change-of-unroll against the previous set.
        unrolls = [s.unroll for s in plan.sets]
        expected_flags = [False] + [
            unrolls[i] != unrolls[i - 1] for i in range(1, len(unrolls))
        ]
        assert [s.reconfigure for s in plan.sets] == expected_flags

    def test_unroll_for_rows_is_cached_and_read_only(self, matrix):
        plan = FineGrainedReconfigurationUnit(AcamarConfig()).plan(matrix)
        expansion = plan.unroll_for_rows
        assert plan.unroll_for_rows is expansion
        assert not expansion.flags.writeable
        # Matches the seed's per-set fill loop.
        expected = np.empty(plan.sets[-1].stop_row, dtype=np.int64)
        for row_set in plan.sets:
            expected[row_set.start_row : row_set.stop_row] = row_set.unroll
        np.testing.assert_array_equal(expansion, expected)
