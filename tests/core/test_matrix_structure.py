"""Tests for the Matrix Structure unit's solver selection."""

import numpy as np
import pytest

from repro.core.matrix_structure import MatrixStructureUnit
from repro.datasets.generators import (
    sdd_indefinite_matrix,
    sdd_matrix,
    spd_clique_matrix,
    spd_clique_skew_matrix,
)
from repro.sparse import CSRMatrix


@pytest.fixture
def unit():
    return MatrixStructureUnit()


class TestSelection:
    def test_symmetric_selects_cg(self, unit):
        matrix = spd_clique_matrix(256, 6.0, seed=1)
        selection = unit.select_solver(matrix)
        assert selection.solver == "cg"
        assert selection.properties.symmetric

    def test_symmetric_and_dominant_still_prefers_cg(self, unit):
        matrix = sdd_matrix(256, 6.0, seed=2, symmetric=True)
        selection = unit.select_solver(matrix)
        assert selection.solver == "cg"
        assert selection.properties.strictly_diagonally_dominant

    def test_sdd_nonsymmetric_selects_jacobi(self, unit):
        matrix = sdd_matrix(256, 6.0, seed=3, symmetric=False)
        selection = unit.select_solver(matrix)
        assert selection.solver == "jacobi"
        assert not selection.properties.symmetric

    def test_mixed_sign_dominant_selects_jacobi(self, unit):
        matrix = sdd_indefinite_matrix(256, 6.0, seed=4)
        assert unit.select_solver(matrix).solver == "jacobi"

    def test_general_nonsymmetric_selects_bicgstab(self, unit):
        matrix = spd_clique_skew_matrix(256, 6.0, seed=5)
        selection = unit.select_solver(matrix)
        assert selection.solver == "bicgstab"
        assert not selection.properties.symmetric
        assert not selection.properties.strictly_diagonally_dominant

    def test_reason_is_informative(self, unit):
        matrix = sdd_matrix(64, 4.0, seed=6, symmetric=True)
        selection = unit.select_solver(matrix)
        assert "symmetric" in selection.reason.lower()

    def test_symmetry_tolerance_configurable(self):
        dense = np.array([[2.0, 1.0], [1.0 + 1e-8, 2.0]])
        matrix = CSRMatrix.from_dense(dense)
        loose = MatrixStructureUnit(symmetry_rtol=1e-6)
        strict = MatrixStructureUnit(symmetry_rtol=1e-12)
        assert loose.select_solver(matrix).solver == "cg"
        assert strict.select_solver(matrix).solver == "jacobi"  # SDD fallback

    def test_analyze_matches_selection_properties(self, unit):
        matrix = sdd_matrix(128, 5.0, seed=7)
        props = unit.analyze(matrix)
        selection = unit.select_solver(matrix)
        assert props == selection.properties
