"""Tests for the Fine-Grained Reconfiguration unit and its plans."""

import numpy as np
import pytest

from repro.config import AcamarConfig
from repro.core.finegrained import (
    FineGrainedReconfigurationUnit,
    RowLengthTrace,
    plan_reconfiguration_rate,
    quantize_unroll,
    unsmoothed_event_count,
)
from repro.datasets.generators import sdd_matrix


@pytest.fixture
def matrix():
    return sdd_matrix(512, 8.0, seed=7)


class TestQuantize:
    def test_rounds_to_nearest(self):
        assert quantize_unroll(4.4, 64) == 4
        assert quantize_unroll(4.6, 64) == 5

    def test_clamps_to_bounds(self):
        assert quantize_unroll(0.2, 64) == 1
        assert quantize_unroll(200.0, 64) == 64


class TestRowLengthTrace:
    def test_set_bounds_cover_rows(self, matrix):
        trace = RowLengthTrace(sampling_rate=32, chunk_size=4096)
        bounds = trace.set_bounds(matrix.n_rows)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == matrix.n_rows
        assert len(bounds) == 32

    def test_chunking_produces_sets_per_chunk(self):
        trace = RowLengthTrace(sampling_rate=4, chunk_size=100)
        bounds = trace.set_bounds(250)
        # chunks: 100, 100, 50 -> 4 + 4 + 4 sets
        assert len(bounds) == 12
        assert bounds[3] == (75, 100)   # first chunk ends at 100
        assert bounds[4] == (100, 125)  # second chunk starts fresh

    def test_trace_averages(self, matrix):
        trace = RowLengthTrace(sampling_rate=8, chunk_size=4096)
        averages, bounds = trace.trace(matrix)
        lengths = matrix.row_lengths()
        for avg, (lo, hi) in zip(averages, bounds):
            assert avg == pytest.approx(lengths[lo:hi].mean())


class TestPlan:
    def test_plan_covers_every_row_once(self, matrix):
        plan = FineGrainedReconfigurationUnit(AcamarConfig()).plan(matrix)
        assert plan.sets[0].start_row == 0
        assert plan.sets[-1].stop_row == matrix.n_rows
        for a, b in zip(plan.sets, plan.sets[1:]):
            assert a.stop_row == b.start_row

    def test_first_set_never_flagged_reconfigure(self, matrix):
        plan = FineGrainedReconfigurationUnit(AcamarConfig()).plan(matrix)
        assert not plan.sets[0].reconfigure

    def test_reconfigure_flags_match_unroll_changes(self, matrix):
        plan = FineGrainedReconfigurationUnit(AcamarConfig()).plan(matrix)
        for previous, current in zip(plan.sets, plan.sets[1:]):
            assert current.reconfigure == (current.unroll != previous.unroll)

    def test_unroll_for_rows_expands_sets(self, matrix):
        plan = FineGrainedReconfigurationUnit(AcamarConfig()).plan(matrix)
        per_row = plan.unroll_for_rows
        assert len(per_row) == matrix.n_rows
        for row_set in plan.sets:
            np.testing.assert_array_equal(
                per_row[row_set.start_row : row_set.stop_row], row_set.unroll
            )

    def test_msid_reduces_or_keeps_events(self, matrix):
        config_off = AcamarConfig(r_opt=0)
        config_on = AcamarConfig(r_opt=8)
        unit_off = FineGrainedReconfigurationUnit(config_off).plan(matrix)
        unit_on = FineGrainedReconfigurationUnit(config_on).plan(matrix)
        assert unit_on.reconfiguration_count <= unit_off.reconfiguration_count
        assert unsmoothed_event_count(unit_on) == unit_off.reconfiguration_count

    def test_unrolls_track_row_lengths(self):
        """A matrix with two clearly distinct halves must get two unrolls."""
        lengths = np.array([2] * 64 + [16] * 64)
        rows = np.repeat(np.arange(128), lengths)
        cols = np.concatenate([np.arange(k) for k in lengths])
        from repro.sparse import COOMatrix

        matrix = COOMatrix((128, 128), rows, cols, np.ones(len(rows))).to_csr()
        plan = FineGrainedReconfigurationUnit(
            AcamarConfig(sampling_rate=8, r_opt=0)
        ).plan(matrix)
        assert plan.sets[0].unroll == 2
        assert plan.sets[-1].unroll == 16

    def test_rate_with_single_set(self):
        matrix = sdd_matrix(64, 4.0, seed=1)
        plan = FineGrainedReconfigurationUnit(
            AcamarConfig(sampling_rate=1)
        ).plan(matrix)
        assert len(plan.sets) == 1
        assert plan.reconfiguration_count == 0
        assert plan_reconfiguration_rate(plan) == 0.0

    def test_unroll_respects_max(self, matrix):
        config = AcamarConfig(max_unroll=4)
        plan = FineGrainedReconfigurationUnit(config).plan(matrix)
        assert max(s.unroll for s in plan.sets) <= 4
        assert min(s.unroll for s in plan.sets) >= 1


class TestStreamingTrace:
    def test_stream_matches_vectorized_trace(self, matrix):
        trace = RowLengthTrace(sampling_rate=32, chunk_size=4096)
        averages, bounds = trace.trace(matrix)
        streamed = list(trace.stream(matrix.indptr))
        assert len(streamed) == len(bounds)
        for (lo, hi, avg), (blo, bhi), expected in zip(
            streamed, bounds, averages
        ):
            assert (lo, hi) == (blo, bhi)
            assert avg == pytest.approx(expected)

    def test_stream_with_chunking(self):
        matrix = sdd_matrix(700, 5.0, seed=9)
        trace = RowLengthTrace(sampling_rate=8, chunk_size=256)
        averages, bounds = trace.trace(matrix)
        streamed = list(trace.stream(matrix.indptr))
        assert [s[:2] for s in streamed] == bounds
        np.testing.assert_allclose([s[2] for s in streamed], averages)

    def test_stream_empty_matrix(self):
        trace = RowLengthTrace(sampling_rate=8, chunk_size=256)
        assert list(trace.stream(np.array([0]))) == []
