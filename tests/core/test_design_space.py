"""Tests for the Resource-Decision-loop design-space exploration."""

import pytest

from repro.core.design_space import (
    DesignPoint,
    dominates,
    evaluate_point,
    explore,
    pareto_front,
    recommend,
)
from repro.datasets.generators import sdd_matrix


@pytest.fixture(scope="module")
def matrix():
    return sdd_matrix(512, 8.0, seed=21)


class TestEvaluation:
    def test_point_fields_consistent(self, matrix):
        point = evaluate_point(matrix, 32, 8, 0.15)
        assert point.sampling_rate == 32
        assert point.spmv_cycles > 0
        assert 0.0 <= point.underutilization <= 1.0
        assert point.reconfig_events >= 0
        assert point.reconfig_seconds >= 0.0

    def test_msid_cuts_reconfig_not_latency(self, matrix):
        raw = evaluate_point(matrix, 64, 0, 0.15)
        smoothed = evaluate_point(matrix, 64, 8, 0.15)
        assert smoothed.reconfig_events <= raw.reconfig_events
        assert smoothed.spmv_cycles == pytest.approx(raw.spmv_cycles, rel=0.1)

    def test_grid_size(self, matrix):
        points = explore(
            matrix, sampling_rates=(8, 32), ropts=(0, 8), tolerances=(0.15,)
        )
        assert len(points) == 4


class TestPareto:
    def test_dominance(self):
        better = DesignPoint(8, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        worse = DesignPoint(8, 0, 0.15, 120.0, 0.3, 5, 2e-4)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_domination_on_ties(self):
        a = DesignPoint(8, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        b = DesignPoint(16, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_front_is_nondominated(self, matrix):
        points = explore(
            matrix,
            sampling_rates=(4, 16, 64),
            ropts=(0, 4, 8),
            tolerances=(0.15, 0.6),
        )
        front = pareto_front(points)
        assert front
        for p in front:
            assert not any(q.dominates(p) for q in points)

    def test_front_deduplicates_objective_ties(self, matrix):
        points = explore(
            matrix, sampling_rates=(32,), ropts=(8,), tolerances=(0.15, 0.15)
        )
        front = pareto_front(points)
        assert len(front) == 1


class TestParetoEdgeCases:
    """Generalized pareto_front on raw objective tuples via ``key``."""

    @staticmethod
    def front_ids(rows):
        return [
            identity
            for identity, _ in pareto_front(rows, key=lambda r: r[1])
        ]

    def test_module_level_dominance_predicate(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 3.0), (1.0, 2.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))
        assert not dominates((1.0, 4.0), (2.0, 3.0))

    def test_single_point_space_is_its_own_front(self):
        assert self.front_ids([("only", (3.0, 7.0))]) == ["only"]

    def test_duplicate_points_collapse_to_first(self):
        rows = [("first", (1.0, 2.0)), ("second", (1.0, 2.0))]
        assert self.front_ids(rows) == ["first"]

    def test_tie_on_one_objective_keeps_both(self):
        rows = [("a", (1.0, 5.0)), ("b", (1.0, 3.0))]
        # b dominates a: equal first objective, strictly better second.
        assert self.front_ids(rows) == ["b"]
        rows = [("a", (1.0, 5.0)), ("b", (2.0, 3.0))]
        # Incomparable: tie-free trade-off keeps both, sorted by tuple.
        assert self.front_ids(rows) == ["a", "b"]

    def test_all_dominated_by_single_optimum(self):
        rows = [
            ("best", (0.0, 0.0)),
            ("mid", (1.0, 1.0)),
            ("worst", (2.0, 2.0)),
        ]
        assert self.front_ids(rows) == ["best"]

    def test_arbitrary_arity_tuples(self):
        rows = [
            ("a", (1.0, 1.0, 1.0, 1.0, 1.0)),
            ("b", (1.0, 1.0, 1.0, 1.0, 2.0)),
        ]
        assert self.front_ids(rows) == ["a"]

    def test_default_key_still_reads_objectives_attribute(self):
        better = DesignPoint(8, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        worse = DesignPoint(8, 0, 0.15, 120.0, 0.3, 5, 2e-4)
        assert pareto_front([worse, better]) == [better]

    def test_empty_input_yields_empty_front(self):
        assert pareto_front([]) == []


class TestRecommend:
    def test_budget_respected_when_feasible(self, matrix):
        generous = recommend(
            matrix,
            reconfig_budget_seconds=1.0,
            sampling_rates=(8, 32, 64),
            ropts=(0, 8),
            tolerances=(0.15,),
        )
        assert generous.reconfig_seconds <= 1.0

    def test_tight_budget_falls_back_to_cheapest(self, matrix):
        tight = recommend(
            matrix,
            reconfig_budget_seconds=0.0,
            sampling_rates=(8, 32, 64),
            ropts=(0, 8),
            tolerances=(0.15,),
        )
        all_points = explore(
            matrix, sampling_rates=(8, 32, 64), ropts=(0, 8), tolerances=(0.15,)
        )
        cheapest = min(p.reconfig_seconds for p in pareto_front(all_points))
        assert tight.reconfig_seconds == pytest.approx(cheapest)

    def test_bigger_budget_never_slower(self, matrix):
        grid = dict(sampling_rates=(8, 32, 64), ropts=(0, 8), tolerances=(0.15,))
        small = recommend(matrix, 1e-4, **grid)
        big = recommend(matrix, 1.0, **grid)
        assert big.spmv_cycles <= small.spmv_cycles
