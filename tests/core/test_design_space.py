"""Tests for the Resource-Decision-loop design-space exploration."""

import pytest

from repro.core.design_space import (
    DesignPoint,
    evaluate_point,
    explore,
    pareto_front,
    recommend,
)
from repro.datasets.generators import sdd_matrix


@pytest.fixture(scope="module")
def matrix():
    return sdd_matrix(512, 8.0, seed=21)


class TestEvaluation:
    def test_point_fields_consistent(self, matrix):
        point = evaluate_point(matrix, 32, 8, 0.15)
        assert point.sampling_rate == 32
        assert point.spmv_cycles > 0
        assert 0.0 <= point.underutilization <= 1.0
        assert point.reconfig_events >= 0
        assert point.reconfig_seconds >= 0.0

    def test_msid_cuts_reconfig_not_latency(self, matrix):
        raw = evaluate_point(matrix, 64, 0, 0.15)
        smoothed = evaluate_point(matrix, 64, 8, 0.15)
        assert smoothed.reconfig_events <= raw.reconfig_events
        assert smoothed.spmv_cycles == pytest.approx(raw.spmv_cycles, rel=0.1)

    def test_grid_size(self, matrix):
        points = explore(
            matrix, sampling_rates=(8, 32), ropts=(0, 8), tolerances=(0.15,)
        )
        assert len(points) == 4


class TestPareto:
    def test_dominance(self):
        better = DesignPoint(8, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        worse = DesignPoint(8, 0, 0.15, 120.0, 0.3, 5, 2e-4)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_domination_on_ties(self):
        a = DesignPoint(8, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        b = DesignPoint(16, 8, 0.15, 100.0, 0.2, 3, 1e-4)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_front_is_nondominated(self, matrix):
        points = explore(
            matrix,
            sampling_rates=(4, 16, 64),
            ropts=(0, 4, 8),
            tolerances=(0.15, 0.6),
        )
        front = pareto_front(points)
        assert front
        for p in front:
            assert not any(q.dominates(p) for q in points)

    def test_front_deduplicates_objective_ties(self, matrix):
        points = explore(
            matrix, sampling_rates=(32,), ropts=(8,), tolerances=(0.15, 0.15)
        )
        front = pareto_front(points)
        assert len(front) == 1


class TestRecommend:
    def test_budget_respected_when_feasible(self, matrix):
        generous = recommend(
            matrix,
            reconfig_budget_seconds=1.0,
            sampling_rates=(8, 32, 64),
            ropts=(0, 8),
            tolerances=(0.15,),
        )
        assert generous.reconfig_seconds <= 1.0

    def test_tight_budget_falls_back_to_cheapest(self, matrix):
        tight = recommend(
            matrix,
            reconfig_budget_seconds=0.0,
            sampling_rates=(8, 32, 64),
            ropts=(0, 8),
            tolerances=(0.15,),
        )
        all_points = explore(
            matrix, sampling_rates=(8, 32, 64), ropts=(0, 8), tolerances=(0.15,)
        )
        cheapest = min(p.reconfig_seconds for p in pareto_front(all_points))
        assert tight.reconfig_seconds == pytest.approx(cheapest)

    def test_bigger_budget_never_slower(self, matrix):
        grid = dict(sampling_rates=(8, 32, 64), ropts=(0, 8), tolerances=(0.15,))
        small = recommend(matrix, 1e-4, **grid)
        big = recommend(matrix, 1.0, **grid)
        assert big.spmv_cycles <= small.spmv_cycles
