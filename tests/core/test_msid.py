"""Tests for the MSID chain (paper Algorithm 4 / Figure 4)."""

import numpy as np
import pytest

from repro.core.msid import (
    MSIDChain,
    msid_stage,
    reconfiguration_events,
    reconfiguration_rate,
    run_msid_chain,
)
from repro.errors import ConfigurationError


class TestEventCounting:
    def test_counts_value_changes(self):
        assert reconfiguration_events(np.array([4, 6, 2, 10])) == 3
        assert reconfiguration_events(np.array([4, 4, 4])) == 0
        assert reconfiguration_events(np.array([4, 4, 2, 2, 4])) == 2

    def test_short_buffers(self):
        assert reconfiguration_events(np.array([7])) == 0
        assert reconfiguration_events(np.array([])) == 0

    def test_rate_normalizes_by_boundaries(self):
        assert reconfiguration_rate(np.array([1, 2, 3, 4])) == 1.0
        assert reconfiguration_rate(np.array([1, 1, 1, 1])) == 0.0
        assert reconfiguration_rate(np.array([5])) == 0.0


class TestSingleStage:
    def test_within_tolerance_adopts_predecessor(self):
        # |6/4 - 1| = 0.5 <= 0.6: entry 1 becomes 4.
        out = msid_stage(np.array([4.0, 6.0]), tolerance=0.6, stable_prefix=1)
        np.testing.assert_array_equal(out, [4.0, 4.0])

    def test_outside_tolerance_keeps_value(self):
        # |2/6 - 1| = 0.67 > 0.6: entry stays.
        out = msid_stage(np.array([6.0, 2.0]), tolerance=0.6, stable_prefix=1)
        np.testing.assert_array_equal(out, [6.0, 2.0])

    def test_comparisons_use_previous_stage_not_updated_values(self):
        """Algorithm 4 line 10 reads tBuffer^{t-1} on both sides."""
        buffer = np.array([4.0, 6.0, 2.0, 10.0])
        out = msid_stage(buffer, tolerance=0.6, stable_prefix=1)
        # entry2 compares 2 vs original 6 (not the updated 4): 0.67 > 0.6.
        np.testing.assert_array_equal(out, [4.0, 4.0, 2.0, 10.0])

    def test_stable_prefix_is_copied(self):
        buffer = np.array([4.0, 6.0, 6.5])
        out = msid_stage(buffer, tolerance=0.6, stable_prefix=2)
        assert out[1] == 6.0  # prefix entry untouched
        assert out[2] == 6.0  # |6.5/6 - 1| small: adopts predecessor

    def test_zero_predecessor_is_skipped(self):
        out = msid_stage(np.array([0.0, 5.0]), tolerance=0.5, stable_prefix=1)
        np.testing.assert_array_equal(out, [0.0, 5.0])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            msid_stage(np.array([1.0]), tolerance=-0.1, stable_prefix=1)


class TestChain:
    def test_paper_figure4_example(self):
        """Figure 4's tBuffer (4, 6, 2, 10, ...) with tolerance 0.6: the
        chain removes reconfiguration events without touching values that
        differ by more than the tolerance."""
        buffer = np.array([4.0, 6.0, 2.0, 10.0, 8.0, 4.0])
        chain = MSIDChain(stages=8, tolerance=0.6)
        result = chain.optimize(buffer)
        assert result.initial_events == 5
        assert result.final_events < result.initial_events
        assert result.events_removed >= 2

    def test_zero_stages_is_identity(self):
        buffer = np.array([4.0, 6.0, 2.0])
        history = run_msid_chain(buffer, stages=0, tolerance=0.6)
        assert len(history) == 1
        np.testing.assert_array_equal(history[0], buffer)

    def test_history_length(self):
        history = run_msid_chain(np.array([1.0, 2.0]), stages=5, tolerance=0.1)
        assert len(history) == 6

    def test_events_monotone_nonincreasing_in_stages(self, rng):
        buffer = rng.integers(1, 20, size=64).astype(float)
        events = []
        for stages in range(0, 12):
            history = run_msid_chain(buffer, stages, tolerance=0.3)
            events.append(reconfiguration_events(history[-1]))
        assert all(a >= b for a, b in zip(events, events[1:]))

    def test_rate_saturates(self, rng):
        """Figure 5's flattening: beyond ~8 stages the rate barely moves."""
        buffer = rng.integers(1, 20, size=64).astype(float)
        chain_8 = MSIDChain(8, 0.15).optimize(buffer)
        chain_16 = MSIDChain(16, 0.15).optimize(buffer)
        assert chain_16.final_events <= chain_8.final_events
        assert chain_8.final_events - chain_16.final_events <= 3

    def test_zero_tolerance_only_merges_equal_values(self):
        buffer = np.array([4.0, 4.0, 5.0, 5.0, 4.0])
        result = MSIDChain(8, 0.0).optimize(buffer)
        np.testing.assert_array_equal(result.final, buffer)

    def test_huge_tolerance_flattens_everything(self):
        buffer = np.array([4.0, 6.0, 2.0, 10.0, 8.0])
        result = MSIDChain(8, 100.0).optimize(buffer)
        assert result.final_events == 0
        assert np.all(result.final == 4.0)

    def test_negative_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            MSIDChain(-1, 0.1)
        with pytest.raises(ConfigurationError):
            run_msid_chain(np.array([1.0]), stages=-2, tolerance=0.1)
