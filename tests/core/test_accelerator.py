"""Tests for the Acamar accelerator orchestration (both decision loops)."""

import numpy as np

from repro import Acamar, AcamarConfig
from repro.datasets import load_problem, poisson_2d
from repro.datasets.generators import spd_clique_skew_matrix


class TestSolverDecisionLoop:
    def test_direct_convergence_single_attempt(self):
        problem = poisson_2d(16)
        result = Acamar().solve(problem.matrix, problem.b)
        assert result.converged
        assert result.solver_sequence == ("cg",)
        assert result.solver_reconfigurations == 0

    def test_modifier_fires_when_selection_diverges(self):
        """Bc-class matrix is symmetric -> CG selected; CG converges.
        Use a symmetric matrix where CG diverges to force a swap: the
        skew construction is non-symmetric, so instead check a dataset
        whose structure-selected solver fails."""
        problem = load_problem("Ct")  # SDD mixed-sign: jacobi selected, works
        result = Acamar().solve(problem.matrix, problem.b)
        assert result.converged
        assert result.selection.solver == result.solver_sequence[0]

    def test_fallback_sequence_on_engineered_failure(self):
        """Force the first attempt to fail by overriding the fallback
        order so the structure-selected solver is wrong for the matrix."""
        matrix = spd_clique_skew_matrix(512, 6.0, seed=11)  # only bicgstab works
        rng = np.random.default_rng(0)
        b = matrix.matvec(rng.standard_normal(512)).astype(np.float32)
        config = AcamarConfig(
            max_iterations=600,
            solver_fallback_order=("jacobi", "cg", "bicgstab"),
        )
        acamar = Acamar(config)
        # Matrix is non-symmetric, not SDD: bicgstab selected directly.
        result = acamar.solve(matrix, b)
        assert result.converged
        assert result.solver_sequence[0] == "bicgstab"

    def test_sequence_records_selected_by(self):
        problem = load_problem("Fe")
        result = Acamar().solve(problem.matrix, problem.b)
        assert result.attempts[0].selected_by == "matrix_structure"
        for attempt in result.attempts[1:]:
            assert attempt.selected_by == "solver_modifier"

    def test_all_table2_datasets_converge(self):
        """The paper's headline: Acamar column of Table II is all checkmarks.
        (Subset here; the full sweep runs in the benchmarks.)"""
        for key in ("2C", "Wi", "If", "Fe", "Bc"):
            problem = load_problem(key)
            result = Acamar().solve(problem.matrix, problem.b)
            assert result.converged, key

    def test_solution_accuracy(self):
        problem = poisson_2d(20)
        result = Acamar().solve(problem.matrix, problem.b)
        assert problem.relative_error(result.x) < 1e-2
        assert problem.residual_norm(result.x) < 1e-4


class TestResourceDecisionLoop:
    def test_plan_only_path(self):
        problem = poisson_2d(16)
        plan = Acamar().plan(problem.matrix)
        assert plan.sets
        assert len(plan.unroll_for_rows) == problem.n

    def test_plan_respects_config(self):
        problem = poisson_2d(16)
        acamar = Acamar(AcamarConfig(sampling_rate=8, r_opt=0))
        plan = acamar.solve(problem.matrix, problem.b).plan
        assert len(plan.sets) == 8
        assert plan.msid.stages == 0

    def test_spmv_reconfigurations_property(self):
        problem = load_problem("Cr")
        result = Acamar().solve(problem.matrix, problem.b)
        assert result.spmv_reconfigurations == result.plan.reconfiguration_count


class TestAccounting:
    def test_total_ops_merges_attempts(self):
        problem = poisson_2d(12)
        result = Acamar().solve(problem.matrix, problem.b)
        total = result.total_ops()
        per_attempt = sum(
            a.result.ops.spmv_count() for a in result.attempts
        )
        assert total.spmv_count() == per_attempt

    def test_x_property_is_final_solution(self):
        problem = poisson_2d(12)
        result = Acamar().solve(problem.matrix, problem.b)
        np.testing.assert_array_equal(result.x, result.final.x)

    def test_config_precision_respected(self):
        problem = poisson_2d(12)
        acamar = Acamar(AcamarConfig(dtype=np.float64))
        result = acamar.solve(problem.matrix, problem.b)
        assert result.x.dtype == np.float64

    def test_warm_start_passes_through(self):
        problem = poisson_2d(12)
        acamar = Acamar()
        cold = acamar.solve(problem.matrix, problem.b)
        warm = acamar.solve(problem.matrix, problem.b, x0=cold.x)
        assert warm.final.iterations <= cold.final.iterations


class TestFaultHookExhaustion:
    """Forced divergence through the fault_hook seam (repro.faults uses
    the same seam): the Solver Modifier must walk the whole chain, stop
    cleanly, and the per-solver attempt counters must equal the chain."""

    def test_forced_divergence_exhausts_full_chain(self):
        from collections import Counter

        import dataclasses

        from repro.solvers.base import SolveStatus
        from repro.telemetry import Telemetry

        forced = []

        def always_diverge(solver_name, attempt_index, result):
            forced.append((attempt_index, solver_name))
            return dataclasses.replace(result, status=SolveStatus.DIVERGED)

        problem = poisson_2d(12)
        config = AcamarConfig()
        collector = Telemetry()
        with collector.activate():
            result = Acamar(config, fault_hook=always_diverge).solve(
                problem.matrix, problem.b
            )
        # The full chain: structure selection first, then every untried
        # fallback solver exactly once, in preference order.
        expected = [result.selection.solver] + [
            s
            for s in config.solver_fallback_order
            if s != result.selection.solver
        ]
        assert list(result.solver_sequence) == expected
        assert not result.converged
        assert result.solver_reconfigurations == len(expected) - 1
        # The hook saw every attempt, in order.
        assert forced == list(enumerate(expected))
        # solver_attempts.<name> counters agree with the attempt chain.
        attempt_counts = {
            name.removeprefix("solver_attempts."): value
            for name, value in collector.counters.items()
            if name.startswith("solver_attempts.")
        }
        assert attempt_counts == dict(Counter(result.solver_sequence))
        assert collector.counters["solver_swaps"] == len(expected) - 1

    def test_partial_budget_recovers_on_next_solver(self):
        import dataclasses

        from repro.solvers.base import SolveStatus

        def diverge_first_only(solver_name, attempt_index, result):
            if attempt_index == 0:
                return dataclasses.replace(
                    result, status=SolveStatus.DIVERGED
                )
            return None

        problem = poisson_2d(12)
        result = Acamar(fault_hook=diverge_first_only).solve(
            problem.matrix, problem.b
        )
        assert result.converged
        assert len(result.attempts) == 2
        assert result.attempts[0].result.status is SolveStatus.DIVERGED
        assert result.attempts[1].selected_by == "solver_modifier"

    def test_none_hook_result_leaves_attempt_untouched(self):
        calls = []

        def observe_only(solver_name, attempt_index, result):
            calls.append(solver_name)
            return None

        problem = poisson_2d(12)
        result = Acamar(fault_hook=observe_only).solve(
            problem.matrix, problem.b
        )
        assert result.converged
        assert result.solver_sequence == ("cg",)
        assert calls == ["cg"]
