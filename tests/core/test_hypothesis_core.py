"""Property-based tests on the accelerator's decision machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcamarConfig
from repro.core.finegrained import FineGrainedReconfigurationUnit, quantize_unroll
from repro.core.msid import (
    MSIDChain,
    reconfiguration_events,
    run_msid_chain,
)
from repro.datasets.generators import sample_row_lengths
from repro.sparse.coo import COOMatrix

unroll_buffers = st.lists(
    st.integers(1, 64).map(float), min_size=1, max_size=80
)


@given(unroll_buffers, st.integers(0, 12), st.floats(0.0, 2.0))
@settings(max_examples=120, deadline=None)
def test_msid_final_values_come_from_initial_buffer(buffer, stages, tolerance):
    """Algorithm 4 only ever copies entries, never invents values."""
    history = run_msid_chain(np.array(buffer), stages, tolerance)
    assert set(history[-1].tolist()) <= set(buffer)


@given(unroll_buffers, st.floats(0.0, 2.0))
@settings(max_examples=120, deadline=None)
def test_msid_events_monotone_in_stages(buffer, tolerance):
    counts = []
    for stages in range(0, 10):
        final = run_msid_chain(np.array(buffer), stages, tolerance)[-1]
        counts.append(reconfiguration_events(final))
    assert all(a >= b for a, b in zip(counts, counts[1:]))


@given(unroll_buffers)
@settings(max_examples=100, deadline=None)
def test_msid_zero_tolerance_is_identity(buffer):
    result = MSIDChain(8, 0.0).optimize(np.array(buffer))
    np.testing.assert_array_equal(result.initial, result.final)


@given(
    st.floats(0.0, 1000.0, allow_nan=False),
    st.integers(1, 128),
    st.sampled_from(["nearest", "ceil", "floor"]),
)
@settings(max_examples=150, deadline=None)
def test_quantize_always_in_bounds(average, max_unroll, mode):
    value = quantize_unroll(average, max_unroll, mode)
    assert 1 <= value <= max_unroll


@given(
    st.integers(8, 600),      # rows
    st.integers(1, 64),       # sampling rate
    st.integers(0, 10),       # rOpt
    st.floats(2.0, 20.0),     # mean nnz
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_plan_invariants_for_random_matrices(
    n_rows, sampling_rate, r_opt, mean_nnz, seed
):
    """Every plan covers every row exactly once with in-range unrolls."""
    rng = np.random.default_rng(seed)
    lengths = sample_row_lengths(n_rows, mean_nnz, rng, correlation=0.5)
    rows = np.repeat(np.arange(n_rows), lengths)
    cols = np.concatenate(
        [rng.choice(n_rows, size=k, replace=False) for k in lengths]
    )
    matrix = COOMatrix(
        (n_rows, n_rows), rows, cols, np.ones(len(rows))
    ).canonical().to_csr()
    config = AcamarConfig(sampling_rate=sampling_rate, r_opt=r_opt)
    plan = FineGrainedReconfigurationUnit(config).plan(matrix)
    assert plan.sets[0].start_row == 0
    assert plan.sets[-1].stop_row == n_rows
    for a, b in zip(plan.sets, plan.sets[1:]):
        assert a.stop_row == b.start_row
    assert all(1 <= s.unroll <= config.max_unroll for s in plan.sets)
    assert not plan.sets[0].reconfigure
    assert plan.reconfiguration_count == reconfiguration_events(
        plan.final_unrolls
    )
    assert len(plan.unroll_for_rows) == n_rows
