"""Tests for the Solver Modifier unit's bit-register fallback."""

from repro.core.solver_modifier import SolverModifierUnit


class TestSolverModifier:
    def test_default_order_prefers_bicgstab(self):
        unit = SolverModifierUnit()
        assert unit.next_solver() == "bicgstab"

    def test_skips_tried_solvers(self):
        unit = SolverModifierUnit()
        unit.mark_tried("bicgstab")
        assert unit.next_solver() == "cg"
        unit.mark_tried("cg")
        assert unit.next_solver() == "jacobi"

    def test_exhaustion_returns_none(self):
        unit = SolverModifierUnit()
        for solver in ("bicgstab", "cg", "jacobi"):
            unit.mark_tried(solver)
        assert unit.next_solver() is None

    def test_marking_is_idempotent(self):
        unit = SolverModifierUnit()
        unit.mark_tried("cg")
        unit.mark_tried("cg")
        assert unit.tried == frozenset({"cg"})

    def test_custom_order(self):
        unit = SolverModifierUnit(("jacobi", "gmres"))
        assert unit.next_solver() == "jacobi"
        unit.mark_tried("jacobi")
        assert unit.next_solver() == "gmres"

    def test_reset_clears_register(self):
        unit = SolverModifierUnit()
        unit.mark_tried("bicgstab")
        unit.reset()
        assert unit.tried == frozenset()
        assert unit.next_solver() == "bicgstab"

    def test_tried_is_immutable_view(self):
        unit = SolverModifierUnit()
        unit.mark_tried("cg")
        snapshot = unit.tried
        unit.mark_tried("jacobi")
        assert snapshot == frozenset({"cg"})
