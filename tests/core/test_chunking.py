"""Tests for chunked matrix streaming (4096-row chunks)."""

import numpy as np
import pytest

from repro.core.chunking import ChunkStream, chunk_count, chunked_matvec
from repro.datasets.generators import sdd_matrix
from repro.errors import ConfigurationError


@pytest.fixture
def matrix():
    return sdd_matrix(1000, 6.0, seed=55)


class TestChunkCount:
    def test_exact_division(self):
        assert chunk_count(8192, 4096) == 2

    def test_remainder_adds_chunk(self):
        assert chunk_count(8193, 4096) == 3

    def test_small_matrix_one_chunk(self):
        assert chunk_count(10, 4096) == 1

    def test_zero_rows(self):
        assert chunk_count(0, 4096) == 0

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            chunk_count(10, 0)


class TestChunkStream:
    def test_chunks_partition_rows(self, matrix):
        stream = ChunkStream(matrix, 300)
        chunks = list(stream)
        assert len(chunks) == len(stream) == 4
        assert chunks[0].start_row == 0
        assert chunks[-1].stop_row == matrix.n_rows
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop_row == b.start_row

    def test_chunk_matrices_match_slices(self, matrix):
        for chunk in ChunkStream(matrix, 256):
            expected = matrix.row_slice(chunk.start_row, chunk.stop_row)
            assert chunk.matrix.allclose(expected)
            assert chunk.n_rows == chunk.stop_row - chunk.start_row

    def test_indices_sequential(self, matrix):
        indices = [chunk.index for chunk in ChunkStream(matrix, 400)]
        assert indices == list(range(len(indices)))

    def test_invalid_chunk_size(self, matrix):
        with pytest.raises(ConfigurationError):
            ChunkStream(matrix, 0)


class TestChunkedMatvec:
    def test_identical_to_monolithic(self, matrix, rng):
        x = rng.standard_normal(matrix.n_cols)
        np.testing.assert_array_equal(
            chunked_matvec(matrix, x, 177), matrix.matvec(x)
        )

    def test_chunk_size_larger_than_matrix(self, matrix, rng):
        x = rng.standard_normal(matrix.n_cols)
        np.testing.assert_array_equal(
            chunked_matvec(matrix, x, 10_000), matrix.matvec(x)
        )

    def test_paper_chunk_size_on_multi_chunk_matrix(self, rng):
        big = sdd_matrix(5000, 4.0, seed=56)
        x = rng.standard_normal(5000)
        np.testing.assert_array_equal(
            chunked_matvec(big, x, 4096), big.matvec(x)
        )

    def test_plan_has_sets_per_chunk(self):
        """A multi-chunk matrix gets SamplingRate sets per chunk."""
        from repro import Acamar, AcamarConfig

        big = sdd_matrix(5000, 4.0, seed=56)
        config = AcamarConfig(chunk_size=2048, sampling_rate=16)
        plan = Acamar(config).plan(big)
        # chunks: 2048, 2048, 904 -> 16 sets each
        assert len(plan.sets) == 48
        boundaries = [s.start_row for s in plan.sets]
        assert 2048 in boundaries and 4096 in boundaries
