"""Failure injection: degenerate and hostile inputs must fail cleanly.

The accelerator is a library; a bad matrix must produce a typed error or
a clean non-converged status — never a silent NaN solution or an
unhandled numpy warning-turned-crash.
"""

import numpy as np
import pytest

from repro import Acamar, AcamarConfig
from repro.errors import SparseFormatError
from repro.solvers import SOLVER_REGISTRY, make_solver
from repro.sparse import COOMatrix, CSRMatrix


def small_config():
    return AcamarConfig(max_iterations=200, setup_iterations=20)


class TestDegenerateMatrices:
    def test_singular_matrix_never_reports_convergence_with_bad_x(self):
        """A singular system either converges to *a* solution or fails."""
        dense = np.ones((8, 8))  # rank one
        matrix = CSRMatrix.from_dense(dense)
        b = np.ones(8, dtype=np.float32) * 8
        result = Acamar(small_config()).solve(matrix, b)
        if result.converged:
            residual = np.linalg.norm(
                b - matrix.matvec(result.x.astype(np.float64))
            ) / np.linalg.norm(b)
            assert residual < 1e-3

    def test_inconsistent_singular_system_fails(self):
        """b outside range(A): no solver may claim convergence."""
        dense = np.zeros((6, 6))
        dense[0, 0] = 1.0  # rank one, rest null
        matrix = CSRMatrix.from_dense(dense)
        b = np.ones(6, dtype=np.float32)
        result = Acamar(small_config()).solve(matrix, b)
        assert not result.converged

    def test_zero_matrix_fails_cleanly(self):
        matrix = CSRMatrix((4, 4), [0, 0, 0, 0, 0], [], [])
        b = np.ones(4, dtype=np.float32)
        result = Acamar(small_config()).solve(matrix, b)
        assert not result.converged

    def test_one_by_one_system(self):
        matrix = CSRMatrix.from_dense(np.array([[2.0]]))
        result = Acamar(small_config()).solve(
            matrix, np.array([4.0], dtype=np.float32)
        )
        assert result.converged
        assert result.x[0] == pytest.approx(2.0, rel=1e-4)

    def test_huge_value_spread_does_not_crash(self):
        dense = np.diag([1e30, 1e-30, 1.0, 1e15]).astype(np.float64)
        matrix = CSRMatrix.from_dense(dense)
        b = np.ones(4, dtype=np.float32)
        result = Acamar(small_config()).solve(matrix, b)
        # fp32 over/underflows are expected; the status must be clean.
        assert result.final.status is not None


class TestCorruptedStreams:
    def test_nan_values_yield_failure_not_fake_convergence(self):
        dense = np.eye(6) * 4.0
        dense[2, 3] = np.nan
        matrix = CSRMatrix.from_dense(dense)
        b = np.ones(6, dtype=np.float32)
        for name in ("jacobi", "cg", "bicgstab"):
            result = make_solver(name, max_iterations=50).solve(matrix, b)
            assert not result.converged, name

    def test_inf_values_yield_failure(self):
        dense = np.eye(6) * 4.0
        dense[1, 0] = np.inf
        matrix = CSRMatrix.from_dense(dense)
        b = np.ones(6, dtype=np.float32)
        result = make_solver("cg", max_iterations=50).solve(matrix, b)
        assert not result.converged

    def test_malformed_indptr_rejected_at_construction(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix((3, 3), [0, 2, 1, 3], [0, 1, 2], [1.0, 2.0, 3.0])

    def test_duplicate_coordinates_cannot_reach_solvers(self):
        """COO canonicalization removes duplicates before CSR exists."""
        coo = COOMatrix((2, 2), [0, 0, 1], [0, 0, 1], [1.0, 1.0, 4.0])
        matrix = coo.to_csr()
        assert matrix.nnz == 2  # merged


class TestSolverRobustness:
    @pytest.mark.parametrize("name", sorted(SOLVER_REGISTRY))
    def test_all_solvers_terminate_on_hostile_matrix(self, name):
        """Every registered solver must terminate with a clean status on
        a random non-symmetric indefinite matrix."""
        rng = np.random.default_rng(7)
        dense = rng.standard_normal((40, 40))
        matrix = CSRMatrix.from_dense(dense * (rng.random((40, 40)) < 0.3))
        b = rng.standard_normal(40).astype(np.float32)
        solver = make_solver(name, max_iterations=100, setup_iterations=10)
        result = solver.solve(matrix, b)
        assert result.status is not None
        assert len(result.residual_history) <= 101

    def test_acamar_survives_every_generator_class(self):
        """Fuzz the accelerator across structural classes; it must never
        raise on a well-formed matrix."""
        from repro.datasets.generators import (
            balanced_indefinite_matrix,
            sdd_indefinite_matrix,
            sdd_matrix,
            spd_clique_matrix,
            spd_clique_skew_matrix,
        )

        acamar = Acamar(small_config())
        rng = np.random.default_rng(0)
        builders = [
            lambda s: sdd_matrix(128, 5.0, seed=s),
            lambda s: sdd_matrix(128, 5.0, seed=s, symmetric=True),
            lambda s: spd_clique_matrix(128, 5.0, seed=s),
            lambda s: spd_clique_skew_matrix(128, 5.0, seed=s),
            lambda s: sdd_indefinite_matrix(128, 5.0, seed=s),
            lambda s: balanced_indefinite_matrix(128, seed=s),
        ]
        for seed in range(3):
            for build in builders:
                matrix = build(seed)
                b = matrix.matvec(rng.standard_normal(128)).astype(np.float32)
                result = acamar.solve(matrix, b)  # must not raise
                assert result.attempts
