"""End-to-end integration: numerics, decisions and cost models together."""

import numpy as np
import pytest

from repro import Acamar, AcamarConfig
from repro.baselines import StaticDesign
from repro.datasets import (
    convection_diffusion_2d,
    grounded_laplacian_system,
    load_problem,
    normal_equations_system,
    poisson_2d,
    poisson_3d,
)
from repro.fpga import (
    PerformanceModel,
    SpMVPipelineSimulator,
    end_to_end,
    mean_underutilization,
)
from repro.gpu import CuSparseSpMVModel
from repro.metrics import achieved_throughput_fraction, latency_speedup


class TestFullStackOnWorkloads:
    """Solve + cost every Section II-A workload stream."""

    @pytest.fixture(
        params=[
            lambda: poisson_2d(24),
            lambda: poisson_3d(8),
            lambda: convection_diffusion_2d(20, peclet=8.0),
            lambda: grounded_laplacian_system(400, seed=2),
            lambda: normal_equations_system(1500, 400, seed=3),
        ],
        ids=["poisson2d", "poisson3d", "convdiff", "laplacian", "ridge"],
    )
    def problem(self, request):
        return request.param()

    def test_solve_and_cost(self, problem):
        acamar = Acamar()
        result = acamar.solve(problem.matrix, problem.b)
        assert result.converged
        assert problem.residual_norm(result.x) < 1e-3

        model = PerformanceModel()
        latency = model.acamar_latency(problem.matrix, result)
        assert latency.compute_seconds > 0
        report = end_to_end(problem.matrix, latency)
        assert report.total_seconds >= latency.compute_seconds

        throughput = achieved_throughput_fraction(
            latency.final.spmv_report, latency.final.loop_sweeps, model.device
        )
        assert 0.0 < throughput <= 1.0

        gpu = CuSparseSpMVModel().sweep(problem.matrix)
        assert gpu.seconds > 0


class TestCrossModelConsistency:
    def test_pipeline_and_analytic_agree_end_to_end(self):
        problem = load_problem("Qa")
        acamar = Acamar()
        result = acamar.solve(problem.matrix, problem.b)
        model = PerformanceModel()
        from repro.fpga.cost_model import operator_row_lengths

        lengths = operator_row_lengths(problem.matrix, result.final.solver)
        simulator = SpMVPipelineSimulator(model.device)
        pipeline_c, analytic_c = simulator.validate_against_analytic(
            lengths, result.plan
        )
        assert pipeline_c == pytest.approx(analytic_c, rel=0.05)

    def test_acamar_beats_static_where_paper_says(self):
        """At URB=1 and URB=2 the speedup must be decisively above 1."""
        problem = load_problem("Wi")
        acamar_result = Acamar().solve(problem.matrix, problem.b)
        model = PerformanceModel()
        acamar_latency = model.acamar_latency(problem.matrix, acamar_result)
        for urb in (1, 2):
            static_latency = model.solver_latency(
                problem.matrix, acamar_result.final, urb=urb
            )
            assert (
                latency_speedup(
                    static_latency.compute_seconds,
                    acamar_latency.compute_seconds,
                )
                > 2.0
            )

    def test_acamar_ru_beats_wide_static_everywhere(self):
        for key in ("2C", "Wi", "Fe", "Bc", "If"):
            problem = load_problem(key)
            plan = Acamar().plan(problem.matrix)
            lengths = problem.matrix.row_lengths()
            acamar_ru = mean_underutilization(lengths, plan.unroll_for_rows)
            static_ru = mean_underutilization(lengths, 64)
            assert acamar_ru < static_ru, key

    def test_shared_config_keeps_numerics_identical(self):
        """Baseline and Acamar with the same solver produce the same
        iterates — the architecture only changes the cost model."""
        problem = load_problem("Po")
        config = AcamarConfig()
        acamar_result = Acamar(config).solve(problem.matrix, problem.b)
        solver_name = acamar_result.final.solver
        static_result = StaticDesign(solver_name, 8, config).solve(
            problem.matrix, problem.b
        )
        assert static_result.iterations == acamar_result.final.iterations
        np.testing.assert_array_equal(static_result.x, acamar_result.x)


class TestPrecisionModes:
    def test_float64_full_stack(self):
        problem = poisson_2d(16)
        config = AcamarConfig(dtype=np.float64, tolerance=1e-10)
        result = Acamar(config).solve(problem.matrix, problem.b)
        assert result.converged
        assert problem.residual_norm(result.x) < 1e-8

    def test_loose_tolerance_converges_faster(self):
        problem = poisson_2d(20)
        tight = Acamar(AcamarConfig(tolerance=1e-6)).solve(
            problem.matrix, problem.b
        )
        loose = Acamar(AcamarConfig(tolerance=1e-2)).solve(
            problem.matrix, problem.b
        )
        assert loose.final.iterations < tight.final.iterations
