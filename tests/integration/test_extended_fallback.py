"""Extension: robust convergence beyond the paper's three solvers.

The paper's Solver Modifier cycles through Jacobi, CG and BiCG-STAB.
There exist matrices — symmetric indefinite with heterogeneous scales —
on which *all three* fail; this test demonstrates the library's extended
fallback order (GMRES as the method of last resort, per Table I's
"General Method of Residual" row) rescuing such a system.
"""

import numpy as np
import pytest

from repro import Acamar, AcamarConfig
from repro.baselines import run_solver_portfolio
from repro.datasets.generators import balanced_indefinite_matrix


@pytest.fixture(scope="module")
def hostile_system():
    """A system where Jacobi, CG and BiCG-STAB all fail (verified)."""
    matrix = balanced_indefinite_matrix(
        1024, seed=30, coupling=2.0, magnitude_spread=1.0
    )
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(1024)
    b = matrix.matvec(x_true).astype(np.float32)
    return matrix, b, x_true


@pytest.mark.slow
def test_paper_solvers_all_fail(hostile_system):
    matrix, b, _ = hostile_system
    results = run_solver_portfolio(matrix, b)
    assert all(not r.converged for r in results.values()), {
        k: v.status.value for k, v in results.items()
    }


@pytest.mark.slow
def test_gmres_fallback_rescues(hostile_system):
    matrix, b, x_true = hostile_system
    config = AcamarConfig(
        solver_fallback_order=("bicgstab", "jacobi", "gmres"),
        solver_options={"gmres": {"restart": 1024}},
        max_iterations=2500,
    )
    result = Acamar(config).solve(matrix, b)
    assert result.converged
    assert result.solver_sequence[-1] == "gmres"
    # The selection (symmetric -> CG) fails first, then the modifier
    # walks the extended order until full GMRES closes it out.
    assert len(result.solver_sequence) >= 3
    # The system is indefinite and badly scaled: a 1e-5 residual still
    # leaves a visible forward error through the condition number.
    error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
    assert error < 0.1
