"""Smoke tests: every shipped example must run and say what it promises.

Examples are the first thing a new user executes; a broken one costs more
trust than a failing unit test.  Each example runs in-process (importing
its module and calling ``main``) with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        del sys.modules[spec.name]
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Matrix Structure unit" in out
        assert "converged: True" in out
        assert "speedup" in out

    def test_robust_convergence(self, capsys):
        out = run_example("robust_convergence", capsys)
        assert "FAILED" in out  # the static solvers visibly fail
        assert out.count("converged=True") == 3  # Acamar recovers all three

    def test_reconfiguration_tuning(self, capsys):
        out = run_example("reconfiguration_tuning", capsys)
        assert "sampling-rate sweep" in out
        assert "MSID-stage sweep" in out

    def test_workload_gallery(self, capsys):
        out = run_example("workload_gallery", capsys)
        assert out.count("converged=True") == 4  # all four workloads

    def test_solver_showdown(self, capsys):
        out = run_example("solver_showdown", capsys)
        assert "max_iterations" in out  # somebody visibly fails
        assert "jacobi" in out and "bicgstab" in out

    def test_preconditioning(self, capsys):
        out = run_example("preconditioning", capsys)
        assert "ilu0" in out
        assert "takeaway" in out

    def test_campaign_evaluation(self, capsys):
        out = run_example("campaign_evaluation", capsys)
        assert "convergence rate      : 100%" in out
        assert "solver mix" in out

    def test_matrix_market_workflow(self, capsys):
        out = run_example("matrix_market_workflow", capsys)
        assert "after RCM: bandwidth=" in out
        assert "converged=True" in out
        assert "residual trajectory" in out
