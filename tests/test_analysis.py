"""Tests for convergence-history analysis and failure diagnosis."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ResidualSummary,
    diagnose_failure,
    iterations_to_tolerance,
    summarize_residuals,
)
from repro.baselines import StaticDesign
from repro.datasets import load_problem, poisson_2d
from repro.solvers import ConjugateGradientSolver, SolveStatus
from repro.solvers.base import OpCounter, SolveResult


def make_result(history, status=SolveStatus.MAX_ITERATIONS, solver="cg"):
    return SolveResult(
        solver=solver,
        status=status,
        x=np.zeros(2, dtype=np.float32),
        iterations=len(history),
        residual_history=np.asarray(history, dtype=np.float64),
        ops=OpCounter(),
    )


class TestSummarize:
    def test_converging_trajectory(self):
        summary = summarize_residuals(make_result([1.0, 0.1, 0.01]))
        assert summary.initial == 1.0
        assert summary.final == 0.01
        assert summary.best == 0.01
        assert summary.monotone
        assert summary.rate == pytest.approx(0.1)

    def test_spiky_trajectory(self):
        summary = summarize_residuals(make_result([1.0, 50.0, 0.5]))
        assert not summary.monotone
        assert summary.peak == 50.0
        assert summary.peak_over_initial == 50.0

    def test_empty_history(self):
        summary = summarize_residuals(make_result([]))
        assert summary.iterations == 0
        assert math.isinf(summary.initial)
        assert summary.rate == 1.0

    def test_nonfinite_entries_ignored_in_extremes(self):
        summary = summarize_residuals(make_result([1.0, float("inf"), 0.5]))
        assert summary.peak == 1.0
        assert summary.best == 0.5

    def test_real_solve_summary(self):
        problem = poisson_2d(16)
        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        summary = summarize_residuals(result)
        assert summary.iterations == result.iterations
        assert summary.best <= 1e-5
        assert 0.0 < summary.rate < 1.0


class TestExtrapolation:
    def test_already_converged(self):
        summary = summarize_residuals(make_result([1.0, 1e-6]))
        assert iterations_to_tolerance(summary, 1e-5) == 2.0

    def test_extrapolates_from_rate(self):
        # rate 0.1/iteration: 1e-5 needs 5 iterations from 1.0.
        summary = ResidualSummary(
            iterations=2, initial=1.0, final=0.1, best=0.1, peak=1.0,
            peak_over_initial=1.0, monotone=True, rate=0.1,
        )
        assert iterations_to_tolerance(summary, 1e-5) == pytest.approx(5.0)

    def test_no_progress_is_infinite(self):
        summary = summarize_residuals(make_result([1.0, 1.0, 1.0]))
        assert math.isinf(iterations_to_tolerance(summary, 1e-5))


class TestDiagnosis:
    def test_converged_result_short_circuit(self):
        problem = poisson_2d(12)
        result = ConjugateGradientSolver().solve(problem.matrix, problem.b)
        assert "converged" in diagnose_failure(problem.matrix, result)

    def test_cg_on_nonsymmetric_names_the_violation(self):
        problem = load_problem("If")
        result = StaticDesign("cg", 8).solve(problem.matrix, problem.b)
        message = diagnose_failure(problem.matrix, result)
        assert "non-symmetric" in message
        assert "Solver Modifier" in message

    def test_jacobi_on_non_dominant_names_eq1(self):
        problem = load_problem("2C")
        result = StaticDesign("jacobi", 8).solve(problem.matrix, problem.b)
        message = diagnose_failure(problem.matrix, result)
        assert "diagonally dominant" in message

    def test_bicgstab_on_symmetric_indefinite(self):
        problem = load_problem("Bc")
        result = StaticDesign("bicgstab", 8).solve(problem.matrix, problem.b)
        message = diagnose_failure(problem.matrix, result)
        assert "symmetric" in message

    def test_breakdown_mentioned(self):
        result = make_result([1.0], status=SolveStatus.BREAKDOWN)
        problem = poisson_2d(8)
        assert "breakdown" in diagnose_failure(problem.matrix, result)
