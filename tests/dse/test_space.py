"""Tests for the declarative fleet design space."""

import json

import pytest

from repro.dse import (
    DEMO_SOURCES,
    SOLVER_MIXES,
    DesignSpace,
    FleetShape,
    TrafficSpec,
    cross_shapes,
    demo_space,
    load_space,
    point_id,
    space_from_dict,
)
from repro.errors import ConfigurationError


def small_shape(**overrides):
    fields = dict(
        slots_per_fleet=2, max_unroll=16, solver_mix="paper-default",
        cache_capacity=8, queue_capacity=512, min_fleets=1, max_fleets=2,
    )
    fields.update(overrides)
    return FleetShape(**fields)


class TestFleetShape:
    def test_round_trips_through_as_dict(self):
        shape = small_shape()
        assert FleetShape(**shape.as_dict()) == shape

    def test_shape_id_is_stable_and_readable(self):
        assert small_shape().shape_id == (
            "s2-u16-paper-default-c8-q512-f1:2"
        )

    @pytest.mark.parametrize("overrides", [
        {"slots_per_fleet": 0},
        {"max_unroll": 0},
        {"solver_mix": "nope"},
        {"cache_capacity": 0},
        {"queue_capacity": 0},
        {"min_fleets": 0},
        {"min_fleets": 3, "max_fleets": 2},
    ])
    def test_invalid_fields_raise(self, overrides):
        with pytest.raises(ConfigurationError):
            small_shape(**overrides)

    def test_every_solver_mix_is_a_full_fallback_order(self):
        for order in SOLVER_MIXES.values():
            assert sorted(order) == ["bicgstab", "cg", "jacobi"]


class TestTrafficSpec:
    def test_as_dict_round_trips(self):
        spec = TrafficSpec(
            name="t", mix="uniform", rate_rps=10.0, duration_s=1.0
        )
        assert TrafficSpec(**spec.as_dict()) == spec

    @pytest.mark.parametrize("overrides", [
        {"name": ""},
        {"mix": "nope"},
        {"rate_rps": 0.0},
        {"duration_s": 0.0},
        {"deadline_ms": 0.0},
    ])
    def test_invalid_fields_raise(self, overrides):
        fields = dict(
            name="t", mix="uniform", rate_rps=10.0, duration_s=1.0
        )
        fields.update(overrides)
        with pytest.raises(ConfigurationError):
            TrafficSpec(**fields)


class TestDesignSpace:
    def test_points_enumerate_shape_major(self):
        shapes = (small_shape(), small_shape(max_unroll=32))
        traffic = (
            TrafficSpec(name="a", mix="uniform", rate_rps=1.0,
                        duration_s=1.0),
            TrafficSpec(name="b", mix="uniform", rate_rps=2.0,
                        duration_s=1.0),
        )
        space = DesignSpace(
            shapes=shapes, traffic=traffic, sources=("2C",)
        )
        assert len(space) == 4
        ids = [point_id(s, t) for s, t in space.points()]
        assert ids == [
            f"{shapes[0].shape_id}@a", f"{shapes[0].shape_id}@b",
            f"{shapes[1].shape_id}@a", f"{shapes[1].shape_id}@b",
        ]

    def test_duplicate_shapes_raise(self):
        with pytest.raises(ConfigurationError):
            DesignSpace(
                shapes=(small_shape(), small_shape()),
                traffic=(TrafficSpec(name="a", mix="uniform",
                                     rate_rps=1.0, duration_s=1.0),),
                sources=("2C",),
            )

    def test_empty_sections_raise(self):
        traffic = (TrafficSpec(name="a", mix="uniform", rate_rps=1.0,
                               duration_s=1.0),)
        with pytest.raises(ConfigurationError):
            DesignSpace(shapes=(), traffic=traffic, sources=("2C",))
        with pytest.raises(ConfigurationError):
            DesignSpace(shapes=(small_shape(),), traffic=(),
                        sources=("2C",))
        with pytest.raises(ConfigurationError):
            DesignSpace(shapes=(small_shape(),), traffic=traffic,
                        sources=())


class TestCrossShapes:
    def test_full_cross_product(self):
        shapes = cross_shapes({
            "slots_per_fleet": (2, 4),
            "max_unroll": (16,),
            "solver_mix": ("paper-default", "cg-first"),
            "cache_capacity": (8,),
            "queue_capacity": (512,),
            "fleet_bounds": ((1, 2),),
        })
        assert len(shapes) == 4

    def test_missing_and_unknown_axes_raise(self):
        with pytest.raises(ConfigurationError):
            cross_shapes({"slots_per_fleet": (2,)})
        with pytest.raises(ConfigurationError):
            cross_shapes({
                "slots_per_fleet": (2,), "max_unroll": (16,),
                "solver_mix": ("paper-default",), "cache_capacity": (8,),
                "queue_capacity": (512,), "fleet_bounds": ((1, 2),),
                "bogus": (1,),
            })

    def test_bad_fleet_bounds_raise(self):
        with pytest.raises(ConfigurationError):
            cross_shapes({
                "slots_per_fleet": (2,), "max_unroll": (16,),
                "solver_mix": ("paper-default",), "cache_capacity": (8,),
                "queue_capacity": (512,), "fleet_bounds": (3,),
            })


class TestDemoSpace:
    def test_shape_and_size(self):
        space = demo_space()
        assert len(space.shapes) == 32
        assert len(space.traffic) == 2
        assert space.sources == DEMO_SOURCES
        assert len(space) == 64

    def test_demo_space_round_trips_through_dict(self):
        doc = demo_space().as_dict()
        rebuilt = DesignSpace(
            shapes=tuple(FleetShape(**s) for s in doc["shapes"]),
            traffic=tuple(TrafficSpec(**t) for t in doc["traffic"]),
            sources=tuple(doc["sources"]),
        )
        assert rebuilt == demo_space()


class TestLoadSpace:
    def document(self):
        return {
            "axes": {
                "slots_per_fleet": [2],
                "max_unroll": [16],
                "solver_mix": ["paper-default"],
                "cache_capacity": [8],
                "queue_capacity": [512],
                "fleet_bounds": [[1, 2]],
            },
            "traffic": [{
                "name": "t", "mix": "uniform", "rate_rps": 10.0,
                "duration_s": 1.0,
            }],
            "sources": ["2C", "Wi"],
        }

    def test_loads_valid_document(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(self.document()))
        space = load_space(path)
        assert len(space.shapes) == 1
        assert space.sources == ("2C", "Wi")

    def test_unknown_top_level_key_raises(self):
        doc = self.document()
        doc["bogus"] = 1
        with pytest.raises(ConfigurationError):
            space_from_dict(doc)

    def test_unknown_traffic_key_raises(self):
        doc = self.document()
        doc["traffic"][0]["bogus"] = 1
        with pytest.raises(ConfigurationError):
            space_from_dict(doc)

    def test_unknown_source_raises(self):
        doc = self.document()
        doc["sources"] = ["NOPE"]
        with pytest.raises(ConfigurationError):
            space_from_dict(doc)

    def test_missing_file_and_bad_json_raise(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_space(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_space(bad)
