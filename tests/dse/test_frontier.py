"""Tests for the five-objective fleet frontier."""

from repro.dse import OBJECTIVES, compute_frontier, point_objectives


def record(identity, p99, dev_s, area, cfg_rate, gfpw):
    return {
        "id": identity,
        "shape": {},
        "traffic": {},
        "metrics": {
            "p99_ms": p99,
            "device_seconds": dev_s,
            "area_mm2": area,
            "reconfig_rate_per_s": cfg_rate,
            "gflops_per_watt": gfpw,
        },
    }


class TestPointObjectives:
    def test_tuple_matches_objective_names(self):
        rec = record("a", 1.0, 2.0, 3.0, 4.0, 5.0)
        assert len(point_objectives(rec)) == len(OBJECTIVES)
        assert point_objectives(rec) == (1.0, 2.0, 3.0, 4.0, -5.0)

    def test_efficiency_is_negated_so_more_is_better(self):
        efficient = record("a", 1.0, 1.0, 1.0, 1.0, 10.0)
        wasteful = record("b", 1.0, 1.0, 1.0, 1.0, 1.0)
        assert point_objectives(efficient)[-1] < (
            point_objectives(wasteful)[-1]
        )


class TestComputeFrontier:
    def test_dominated_point_is_dropped(self):
        good = record("good", 1.0, 1.0, 1.0, 1.0, 10.0)
        bad = record("bad", 2.0, 2.0, 2.0, 2.0, 5.0)
        front = compute_frontier([bad, good])
        assert [r["id"] for r in front] == ["good"]

    def test_incomparable_points_both_survive(self):
        fast = record("fast", 1.0, 5.0, 1.0, 1.0, 1.0)
        cheap = record("cheap", 5.0, 1.0, 1.0, 1.0, 1.0)
        front = compute_frontier([fast, cheap])
        assert {r["id"] for r in front} == {"fast", "cheap"}

    def test_higher_efficiency_dominates(self):
        efficient = record("eff", 1.0, 1.0, 1.0, 1.0, 10.0)
        wasteful = record("waste", 1.0, 1.0, 1.0, 1.0, 1.0)
        front = compute_frontier([wasteful, efficient])
        assert [r["id"] for r in front] == ["eff"]

    def test_empty_input(self):
        assert compute_frontier([]) == []
