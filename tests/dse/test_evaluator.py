"""Tests for end-to-end design-point evaluation and the sweep."""

import pytest

from repro.dse import (
    DesignSpace,
    FleetShape,
    TrafficSpec,
    acamar_config_for,
    cluster_config_for,
    evaluate_items,
    evaluate_point,
    run_sweep,
)
from repro.config import AcamarConfig
from repro.parallel import WorkItem
from repro.telemetry import Telemetry


def tiny_shape(**overrides):
    fields = dict(
        slots_per_fleet=2, max_unroll=16, solver_mix="paper-default",
        cache_capacity=8, queue_capacity=256, min_fleets=1, max_fleets=2,
    )
    fields.update(overrides)
    return FleetShape(**fields)


def tiny_traffic():
    return TrafficSpec(
        name="t", mix="repeat-heavy", rate_rps=50.0, duration_s=2.0
    )


def tiny_space():
    return DesignSpace(
        shapes=(tiny_shape(), tiny_shape(max_unroll=64)),
        traffic=(tiny_traffic(),),
        sources=("2C", "Wi"),
    )


class TestConfigMapping:
    def test_shape_maps_to_acamar_config(self):
        config = acamar_config_for(tiny_shape(solver_mix="cg-first"))
        assert config.max_unroll == 16
        assert config.solver_fallback_order == (
            "cg", "bicgstab", "jacobi"
        )

    def test_base_config_overrides_survive(self):
        base = AcamarConfig(sampling_rate=32)
        config = acamar_config_for(tiny_shape(), base)
        assert config.sampling_rate == 32
        assert config.max_unroll == 16

    def test_shape_maps_to_cluster_config(self):
        config = cluster_config_for(tiny_shape())
        assert config.slots_per_fleet == 2
        assert config.initial_fleets == 1
        assert config.max_fleets == 2
        assert config.autoscale is True
        assert config.workers == 1

    def test_static_fleet_bounds_disable_autoscaling(self):
        config = cluster_config_for(
            tiny_shape(min_fleets=2, max_fleets=2)
        )
        assert config.autoscale is False


class TestEvaluatePoint:
    def test_record_carries_all_frontier_objectives(self):
        record = evaluate_point(
            tiny_shape(), tiny_traffic(), ("2C", "Wi"), seed=0
        )
        metrics = record["metrics"]
        for key in ("p99_ms", "device_seconds", "area_mm2",
                    "reconfig_rate_per_s", "gflops_per_watt",
                    "fabric_mm2_seconds", "energy_j"):
            assert key in metrics
        assert metrics["completed"] > 0
        assert metrics["gflops_per_watt"] > 0
        assert metrics["area_mm2"] > 0
        assert record["id"].endswith("@t")

    def test_same_seed_same_record(self):
        args = (tiny_shape(), tiny_traffic(), ("2C", "Wi"))
        assert evaluate_point(*args, seed=0) == evaluate_point(
            *args, seed=0
        )

    def test_seed_changes_the_workload(self):
        args = (tiny_shape(), tiny_traffic(), ("2C", "Wi"))
        first = evaluate_point(*args, seed=0)
        second = evaluate_point(*args, seed=1)
        assert first["metrics"] != second["metrics"]


class TestEvaluateItems:
    def test_bad_payload_becomes_error_record(self):
        collector = Telemetry()
        item = WorkItem(
            index=0,
            source={
                "id": "broken",
                "shape": {**tiny_shape().as_dict(),
                          "slots_per_fleet": 0},
                "traffic": tiny_traffic().as_dict(),
                "sources": ["2C"],
            },
            seed=0,
            cost=1.0,
        )
        with collector.activate():
            results = evaluate_items([item], AcamarConfig())
        assert len(results) == 1
        assert results[0].entry is None
        assert "ConfigurationError" in results[0].error
        assert results[0].label == "broken"

    def test_counters_track_outcomes(self):
        space = tiny_space()
        collector = Telemetry()
        run_sweep(space, seed=0, collector=collector)
        assert collector.counters["dse.points_evaluated"] == len(space)


class TestRunSweep:
    def test_results_ordered_and_complete(self):
        space = tiny_space()
        results = run_sweep(space, seed=0)
        assert [r.index for r in results] == list(range(len(space)))
        assert all(r.entry is not None for r in results)

    @pytest.mark.slow
    def test_workers_do_not_change_records(self):
        space = tiny_space()
        solo = run_sweep(space, seed=0, workers=1)
        pooled = run_sweep(space, seed=0, workers=2)
        assert [r.entry for r in solo] == [r.entry for r in pooled]
