"""Tests for DSE report assembly and the ``repro dse`` CLI."""

import json

import pytest

from repro.cli import main
from repro.dse import (
    CapacityQuery,
    DesignSpace,
    FleetShape,
    TrafficSpec,
    run_dse,
)


def tiny_space():
    return DesignSpace(
        shapes=(
            FleetShape(
                slots_per_fleet=2, max_unroll=16,
                solver_mix="paper-default", cache_capacity=8,
                queue_capacity=256, min_fleets=1, max_fleets=2,
            ),
            FleetShape(
                slots_per_fleet=4, max_unroll=16,
                solver_mix="paper-default", cache_capacity=8,
                queue_capacity=256, min_fleets=1, max_fleets=2,
            ),
        ),
        traffic=(
            TrafficSpec(
                name="t", mix="repeat-heavy", rate_rps=50.0,
                duration_s=2.0,
            ),
        ),
        sources=("2C", "Wi"),
    )


def tiny_space_document():
    return {
        "axes": {
            "slots_per_fleet": [2, 4],
            "max_unroll": [16],
            "solver_mix": ["paper-default"],
            "cache_capacity": [8],
            "queue_capacity": [256],
            "fleet_bounds": [[1, 2]],
        },
        "traffic": [{
            "name": "t", "mix": "repeat-heavy", "rate_rps": 50.0,
            "duration_s": 2.0,
        }],
        "sources": ["2C", "Wi"],
    }


@pytest.fixture(scope="module")
def tiny_report():
    return run_dse(
        space=tiny_space(), seed=0,
        query=CapacityQuery(slo_p99_ms=80.0, rate_rps=50.0),
    )


class TestDseReport:
    def test_json_is_deterministic(self, tiny_report):
        again = run_dse(
            space=tiny_space(), seed=0,
            query=CapacityQuery(slo_p99_ms=80.0, rate_rps=50.0),
        )
        assert tiny_report.to_json() == again.to_json()

    def test_document_structure(self, tiny_report):
        doc = tiny_report.as_dict()
        assert doc["schema_version"] == 1
        assert doc["dse"]["points"] == 2
        assert doc["dse"]["evaluated"] == 2
        assert doc["dse"]["failed"] == 0
        assert len(doc["points"]) == 2
        assert doc["frontier"]
        assert set(doc["frontier"]) <= {p["id"] for p in doc["points"]}
        assert doc["capacity"]["cheapest"] is not None

    def test_csv_has_one_row_per_point(self, tiny_report):
        lines = tiny_report.to_csv().strip().split("\n")
        assert lines[0].startswith("id,traffic,mix,")
        assert len(lines) == 1 + 2
        assert lines[0].endswith(",on_frontier")

    def test_text_summary_names_the_answer(self, tiny_report):
        text = tiny_report.render_text()
        assert "capacity answer" in text
        assert tiny_report.capacity["cheapest"]["id"] in text


class TestDseCli:
    def test_feasible_answer_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(tiny_space_document()))
        code = main([
            "dse", "--seed", "0", "--space", str(path),
            "--slo-ms", "80", "--rate", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "capacity answer" in out

    def test_no_feasible_answer_exits_one(self, tmp_path, capsys):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(tiny_space_document()))
        code = main([
            "dse", "--seed", "0", "--space", str(path),
            "--slo-ms", "0.001", "--rate", "50",
        ])
        assert code == 1
        assert "no feasible configuration" in capsys.readouterr().out

    def test_bad_space_file_exits_two(self, tmp_path, capsys):
        code = main([
            "dse", "--space", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert "dse:" in capsys.readouterr().err

    def test_bad_query_exits_two(self, tmp_path, capsys):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(tiny_space_document()))
        code = main([
            "dse", "--space", str(path), "--slo-ms", "-1",
        ])
        assert code == 2

    def test_json_out_byte_identical_across_runs(self, tmp_path, capsys):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(tiny_space_document()))
        argv = [
            "dse", "--seed", "0", "--space", str(path),
            "--slo-ms", "80", "--rate", "50",
        ]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(argv + ["--out", str(first)]) == 0
        assert main(argv + ["--out", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_csv_format_prints_rows(self, tmp_path, capsys):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(tiny_space_document()))
        code = main([
            "dse", "--seed", "0", "--space", str(path),
            "--slo-ms", "80", "--rate", "50", "--format", "csv",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("id,traffic,mix,")
