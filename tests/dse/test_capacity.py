"""Tests for the capacity planner."""

import pytest

from repro.dse import CapacityQuery, is_feasible, plan_capacity
from repro.errors import ConfigurationError


def record(identity, rate=500.0, p99=10.0, shed=0.0, unaccounted=0,
           completed=100, fabric=1.0):
    return {
        "id": identity,
        "shape": {"slots_per_fleet": 2},
        "traffic": {"name": "t", "rate_rps": rate},
        "metrics": {
            "p99_ms": p99,
            "shed_rate": shed,
            "unaccounted": unaccounted,
            "completed": completed,
            "fabric_mm2_seconds": fabric,
            "area_mm2": 1.0,
            "gflops_per_watt": 1.0,
        },
    }


class TestCapacityQuery:
    @pytest.mark.parametrize("fields", [
        {"slo_p99_ms": 0.0},
        {"rate_rps": 0.0},
        {"max_shed_rate": -0.1},
        {"max_shed_rate": 1.5},
    ])
    def test_invalid_bounds_raise(self, fields):
        with pytest.raises(ConfigurationError):
            CapacityQuery(**fields)


class TestFeasibility:
    def test_meets_everything(self):
        assert is_feasible(record("a"), CapacityQuery(slo_p99_ms=50.0))

    @pytest.mark.parametrize("overrides", [
        {"p99": 60.0},
        {"shed": 0.5},
        {"unaccounted": 3},
        {"completed": 0},
    ])
    def test_each_gate_rejects(self, overrides):
        assert not is_feasible(
            record("a", **overrides), CapacityQuery(slo_p99_ms=50.0)
        )


class TestPlanCapacity:
    def test_cheapest_fabric_wins(self):
        answer = plan_capacity(
            [record("pricey", fabric=5.0), record("thrifty", fabric=1.0)],
            CapacityQuery(rate_rps=400.0),
        )
        assert answer["cheapest"]["id"] == "thrifty"
        assert answer["feasible"] == ["thrifty", "pricey"]

    def test_id_breaks_fabric_ties(self):
        answer = plan_capacity(
            [record("bbb"), record("aaa")], CapacityQuery(rate_rps=400.0)
        )
        assert answer["cheapest"]["id"] == "aaa"

    def test_underpowered_traffic_is_not_evidence(self):
        answer = plan_capacity(
            [record("slow-lane", rate=100.0)],
            CapacityQuery(rate_rps=400.0),
        )
        assert answer["cheapest"] is None
        assert answer["considered"] == 0

    def test_no_feasible_point_yields_none(self):
        answer = plan_capacity(
            [record("hot", p99=500.0)], CapacityQuery(slo_p99_ms=50.0)
        )
        assert answer["cheapest"] is None
        assert answer["considered"] == 1
        assert answer["feasible"] == []

    def test_answer_echoes_query(self):
        query = CapacityQuery(
            slo_p99_ms=25.0, rate_rps=123.0, max_shed_rate=0.05
        )
        answer = plan_capacity([], query)
        assert answer["query"] == query.as_dict()
