"""Good/bad fixture pairs for the cross-module rules REP007–REP010.

Each fixture is a tiny virtual repo tree run through the real
whole-program pipeline (``project_report`` in conftest), restricted to
the rule under test so the assertions stay sharp.
"""

TELEMETRY_REGISTRY = (
    "KNOWN_SPANS = frozenset({\"phase.run\"})\n"
    "KNOWN_COUNTERS = frozenset({\"hits\", \"fam.fixed\"})\n"
    "KNOWN_DISTRIBUTIONS = frozenset({\"latency\"})\n"
    "KNOWN_COUNTER_PREFIXES = frozenset({\"fam.\"})\n"
)

LIVE_EMITTER = (
    "from repro import telemetry as tm\n\n\n"
    "def f(x):\n"
    "    with tm.span(\"phase.run\"):\n"
    "        tm.count(\"hits\")\n"
    "        tm.observe(\"latency\", 1.0)\n"
    "        tm.count(f\"fam.{x}\")\n"
)


class TestTelemetryLiveness:
    """REP007 — every registered telemetry name is emitted somewhere."""

    def run(self, project_report, files):
        return project_report(files, rules=["REP007"]).findings

    def test_fully_live_registry_is_clean(self, project_report):
        assert self.run(project_report, {
            "repro/telemetry.py": TELEMETRY_REGISTRY,
            "repro/solvers/run.py": LIVE_EMITTER,
        }) == []

    def test_orphan_counter_flagged_at_registry_line(self, project_report):
        registry = TELEMETRY_REGISTRY.replace(
            '"hits"', '"hits", "ghost"'
        )
        (finding,) = self.run(project_report, {
            "repro/telemetry.py": registry,
            "repro/solvers/run.py": LIVE_EMITTER,
        })
        assert finding.rule == "REP007"
        assert finding.path == "repro/telemetry.py"
        assert finding.line == 2
        assert "'ghost'" in finding.message
        assert "KNOWN_COUNTERS" in finding.message

    def test_orphan_span_and_distribution_flagged(self, project_report):
        registry = TELEMETRY_REGISTRY.replace(
            '"phase.run"', '"phase.run", "dead.span"'
        ).replace('"latency"', '"latency", "dead.dist"')
        findings = self.run(project_report, {
            "repro/telemetry.py": registry,
            "repro/solvers/run.py": LIVE_EMITTER,
        })
        assert sorted(f.message.split("'")[1] for f in findings) \
            == ["dead.dist", "dead.span"]

    def test_counter_under_live_prefix_family_is_exempt(self, project_report):
        # "fam.fixed" is never emitted literally, but the f-string head
        # keeps the whole registered family alive.
        assert self.run(project_report, {
            "repro/telemetry.py": TELEMETRY_REGISTRY,
            "repro/solvers/run.py": LIVE_EMITTER,
        }) == []

    def test_dead_prefix_family_flagged(self, project_report):
        registry = TELEMETRY_REGISTRY.replace(
            '"fam."', '"fam.", "dead."'
        )
        (finding,) = self.run(project_report, {
            "repro/telemetry.py": registry,
            "repro/solvers/run.py": LIVE_EMITTER,
        })
        assert "'dead.'" in finding.message
        assert "KNOWN_COUNTER_PREFIXES" in finding.message

    def test_silent_when_telemetry_module_not_linted(self, project_report):
        # A partial lint cannot prove an emission is missing.
        assert self.run(project_report, {
            "repro/solvers/run.py": LIVE_EMITTER,
        }) == []


WORKER_PRELUDE = (
    "from repro.parallel import run_sharded\n\n\n"
    "def work(items, config):\n"
    "    return []\n\n\n"
)


class TestWorkerBoundary:
    """REP008 — ``run_sharded`` work functions must pickle by name."""

    def run(self, project_report, files):
        return project_report(files, rules=["REP008"]).findings

    def test_top_level_work_fn_is_clean(self, project_report):
        assert self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "def go(items, cfg):\n"
                "    return run_sharded(items, cfg, work_fn=work)\n"
            ),
        }) == []

    def test_lambda_work_fn_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "def go(items, cfg):\n"
                "    return run_sharded(\n"
                "        items, cfg, work_fn=lambda i, c: []\n"
                "    )\n"
            ),
        })
        assert "lambda" in finding.message

    def test_nested_def_work_fn_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "def go(items, cfg):\n"
                "    def inner(i, c):\n"
                "        return []\n"
                "    return run_sharded(items, cfg, work_fn=inner)\n"
            ),
        })
        assert "nested function" in finding.message

    def test_module_level_lambda_assignment_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "shim = lambda i, c: []\n\n\n"
                "def go(items, cfg):\n"
                "    return run_sharded(items, cfg, work_fn=shim)\n"
            ),
        })
        assert "'<lambda>'" in finding.message

    def test_conditional_local_resolves_both_arms(self, project_report):
        # The campaign idiom: one arm clean, one arm a lambda.
        (finding,) = self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "shim = lambda i, c: []\n\n\n"
                "def go(items, cfg, batch):\n"
                "    work_fn = work if batch else shim\n"
                "    return run_sharded(items, cfg, work_fn=work_fn)\n"
            ),
        })
        assert "'shim'" in finding.message

    def test_cross_module_import_of_top_level_def_is_clean(
        self, project_report
    ):
        assert self.run(project_report, {
            "repro/serve/profile.py": (
                "def profile_items(items, config):\n"
                "    return []\n"
            ),
            "repro/campaign/driver.py": (
                "from repro.parallel import run_sharded\n"
                "from repro.serve.profile import profile_items\n\n\n"
                "def go(items, cfg):\n"
                "    return run_sharded(\n"
                "        items, cfg, work_fn=profile_items\n"
                "    )\n"
            ),
        }) == []

    def test_cross_module_import_of_nested_def_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/serve/profile.py": (
                "def outer():\n"
                "    def profile_items(items, config):\n"
                "        return []\n"
                "    return profile_items\n"
            ),
            "repro/campaign/driver.py": (
                "from repro.parallel import run_sharded\n"
                "from repro.serve.profile import profile_items\n\n\n"
                "def go(items, cfg):\n"
                "    return run_sharded(\n"
                "        items, cfg, work_fn=profile_items\n"
                "    )\n"
            ),
        })
        assert "nested function" in finding.message

    def test_chain_leaving_the_tree_is_trusted(self, project_report):
        assert self.run(project_report, {
            "repro/campaign/driver.py": (
                "from repro.parallel import run_sharded\n"
                "from outside.lib import imported_work\n\n\n"
                "def go(items, cfg):\n"
                "    return run_sharded(\n"
                "        items, cfg, work_fn=imported_work\n"
                "    )\n"
            ),
        }) == []

    def test_lambda_in_crossing_argument_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "def go(items, cfg):\n"
                "    return run_sharded(\n"
                "        items, cfg, key=lambda x: x, work_fn=work\n"
                "    )\n"
            ),
        })
        assert "run_sharded argument" in finding.message

    def test_executor_factory_lambda_is_parent_side(self, project_report):
        assert self.run(project_report, {
            "repro/campaign/driver.py": WORKER_PRELUDE + (
                "def go(items, cfg):\n"
                "    return run_sharded(\n"
                "        items, cfg,\n"
                "        executor_factory=lambda: None,\n"
                "        work_fn=work,\n"
                "    )\n"
            ),
        }) == []


class TestExitContract:
    """REP009 — CLI exit statuses provably confined to 0/1/2."""

    def run(self, project_report, files):
        return project_report(files, rules=["REP009"]).findings

    def test_confined_cli_is_clean(self, project_report):
        assert self.run(project_report, {
            "repro/cli.py": (
                "def _cmd_run(args):\n"
                "    return 0 if args else 1\n\n\n"
                "def main(argv=None):\n"
                "    return _cmd_run(argv)\n"
            ),
            "repro/__main__.py": (
                "import sys\n\n"
                "from repro.cli import main\n\n"
                "sys.exit(main())\n"
            ),
        }) == []

    def test_out_of_contract_literal_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/cli.py": (
                "def _cmd_run(args):\n"
                "    return 3\n"
            ),
        })
        assert "status 3" in finding.message
        assert "_cmd_run()" in finding.message

    def test_none_return_path_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/cli.py": (
                "def _cmd_run(args):\n"
                "    if args:\n"
                "        return 0\n"
                "    return None\n"
            ),
        })
        assert "None" in finding.message

    def test_missing_return_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/cli.py": (
                "def _cmd_run(args):\n"
                "    print(args)\n"
            ),
        })
        assert "no return statement" in finding.message

    def test_computed_status_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/cli.py": (
                "def _cmd_run(args):\n"
                "    return len(args)\n"
            ),
        })
        assert "len()" in finding.message

    def test_unconfined_main_reported_once_across_modules(
        self, project_report
    ):
        # main() leaks status 5; both the cli shape walk and the
        # __main__ sys.exit(main()) chase land on the same violation,
        # which must dedupe to one finding.
        (finding,) = self.run(project_report, {
            "repro/cli.py": (
                "def main(argv=None):\n"
                "    return 5\n"
            ),
            "repro/__main__.py": (
                "import sys\n\n"
                "from repro.cli import main\n\n"
                "sys.exit(main())\n"
            ),
        })
        assert "status 5" in finding.message

    def test_unenforced_helpers_are_ignored(self, project_report):
        assert self.run(project_report, {
            "repro/cli.py": (
                "def helper():\n"
                "    return 42\n\n\n"
                "def main(argv=None):\n"
                "    return 0\n"
            ),
        }) == []

    def test_module_level_sys_exit_literal_checked(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/cli.py": (
                "import sys\n\n"
                "sys.exit(3)\n"
            ),
        })
        assert "<module>()" in finding.message
        assert "status 3" in finding.message


class TestClockEscape:
    """REP010 — no wall-clock/RNG laundering into the deterministic
    core through helper re-exports."""

    def run(self, project_report, files):
        return project_report(files, rules=["REP010"]).findings

    def test_reexported_clock_import_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/helpers.py": "from time import perf_counter\n",
            "repro/sparse/mod.py": (
                "from repro.helpers import perf_counter\n"
            ),
        })
        assert finding.path == "repro/sparse/mod.py"
        assert "determinism-tainted" in finding.message
        assert "time.perf_counter" in finding.message

    def test_clock_calling_helper_function_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/helpers.py": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/solvers/mod.py": "from repro.helpers import stamp\n",
        })
        assert "calls time.time()" in finding.message

    def test_taint_propagates_through_reexport_chain(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/helpers.py": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/shim.py": "from repro.helpers import stamp\n",
            "repro/sparse/mod.py": "from repro.shim import stamp\n",
        })
        assert finding.path == "repro/sparse/mod.py"
        assert "via repro.helpers" in finding.message

    def test_shared_rng_instance_flagged(self, project_report):
        (finding,) = self.run(project_report, {
            "repro/helpers.py": (
                "import numpy as np\n\n"
                "RNG = np.random.default_rng(0)\n"
            ),
            "repro/gpu/mod.py": "from repro.helpers import RNG\n",
        })
        assert "RNG instance" in finding.message

    def test_pure_helper_import_is_clean(self, project_report):
        assert self.run(project_report, {
            "repro/helpers.py": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.time()\n\n\n"
                "def pure(x):\n"
                "    return x + 1\n"
            ),
            "repro/sparse/mod.py": "from repro.helpers import pure\n",
        }) == []

    def test_telemetry_is_the_sanctioned_boundary(self, project_report):
        assert self.run(project_report, {
            "repro/telemetry.py": (
                "import time\n\n\n"
                "def span(name):\n"
                "    return time.perf_counter()\n"
            ),
            "repro/sparse/mod.py": "from repro.telemetry import span\n",
        }) == []

    def test_non_scoped_importer_is_not_flagged(self, project_report):
        assert self.run(project_report, {
            "repro/helpers.py": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/experiments/mod.py": (
                "from repro.helpers import stamp\n"
            ),
        }) == []
