"""SARIF 2.1.0 renderer: structural schema validation and determinism.

``jsonschema`` is not a repo dependency, so ``validate_sarif`` is a
hand-rolled structural check of the SARIF 2.1.0 subset the renderer
emits — required keys, types, catalogue/result cross-references and
line-number bounds.  It deliberately fails on anything GitHub code
scanning would reject (missing message, dangling ruleIndex, absolute
artifact URIs).
"""

import json

import pytest

from repro.analysis import format_findings
from repro.analysis.engine import Finding, LintReport
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    TOOL_NAME,
    render_sarif,
)

_LEVELS = {"none", "note", "warning", "error"}


def validate_sarif(doc):
    """Assert ``doc`` is a structurally valid SARIF 2.1.0 log."""
    assert isinstance(doc, dict)
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == "2.1.0"
    assert isinstance(doc["runs"], list) and doc["runs"]
    for run in doc["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rules = driver.get("rules", [])
        assert isinstance(rules, list)
        for descriptor in rules:
            assert isinstance(descriptor["id"], str) and descriptor["id"]
            assert isinstance(
                descriptor["shortDescription"]["text"], str
            )
        for result in run.get("results", []):
            assert isinstance(result["ruleId"], str) and result["ruleId"]
            assert result["level"] in _LEVELS
            assert isinstance(result["message"]["text"], str)
            assert result["message"]["text"]
            if "ruleIndex" in result:
                index = result["ruleIndex"]
                assert isinstance(index, int)
                assert 0 <= index < len(rules)
                assert rules[index]["id"] == result["ruleId"]
            assert isinstance(result["locations"], list)
            for location in result["locations"]:
                physical = location["physicalLocation"]
                uri = physical["artifactLocation"]["uri"]
                assert isinstance(uri, str) and uri
                assert not uri.startswith("/"), "URIs must be repo-relative"
                start = physical["region"]["startLine"]
                assert isinstance(start, int) and start >= 1


def make_report(findings=()):
    return LintReport(findings=list(findings), files_checked=3)


def make_finding(rule="REP001", line=7, severity="error"):
    return Finding(
        rule=rule, path="src/repro/sparse/x.py", line=line,
        message=f"{rule} fired", severity=severity,
    )


class TestRenderer:
    def test_empty_report_still_carries_full_catalogue(self):
        doc = json.loads(render_sarif(make_report()))
        validate_sarif(doc)
        (run,) = doc["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert ids == [f"REP{n:03d}" for n in range(1, 11)]

    def test_findings_become_cross_referenced_results(self):
        doc = json.loads(render_sarif(make_report([
            make_finding("REP001"), make_finding("REP008", line=12),
        ])))
        validate_sarif(doc)
        first, second = doc["runs"][0]["results"]
        assert first["ruleId"] == "REP001" and first["ruleIndex"] == 0
        assert second["ruleId"] == "REP008" and second["ruleIndex"] == 7
        region = second["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 12

    def test_unknown_rule_omits_rule_index(self):
        doc = json.loads(render_sarif(make_report([make_finding("REP999")])))
        validate_sarif(doc)
        (result,) = doc["runs"][0]["results"]
        assert "ruleIndex" not in result

    def test_line_zero_is_clamped_to_one(self):
        doc = json.loads(render_sarif(make_report([make_finding(line=0)])))
        validate_sarif(doc)
        region = (
            doc["runs"][0]["results"][0]["locations"][0]
            ["physicalLocation"]["region"]
        )
        assert region["startLine"] == 1

    @pytest.mark.parametrize("severity,level", [
        ("error", "error"), ("warning", "warning"),
        ("note", "note"), ("mystery", "error"),
    ])
    def test_severity_maps_to_level(self, severity, level):
        doc = json.loads(
            render_sarif(make_report([make_finding(severity=severity)]))
        )
        validate_sarif(doc)
        assert doc["runs"][0]["results"][0]["level"] == level

    def test_output_is_deterministic(self):
        report = make_report([make_finding("REP001"), make_finding("REP007")])
        assert render_sarif(report) == render_sarif(report)

    def test_schema_version_constant_matches_document(self):
        assert SARIF_VERSION == "2.1.0"

    def test_format_findings_dispatches_sarif(self):
        report = make_report([make_finding()])
        assert format_findings(report, "sarif") == render_sarif(report)
