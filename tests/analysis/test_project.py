"""Whole-program layer mechanics (``repro.analysis.project``).

Covers the phase-1 facts records, the :class:`ProjectIndex` resolution
helpers, the incremental content-hash cache (content change, rule-set
change, version bump), byte-identity between the serial / warm-cache /
parallel paths, the ``lint_items`` worker entry point, and the
``--diff`` changed-files machinery.
"""

import json
import subprocess

import pytest

import repro.analysis.project as project
from repro.analysis import format_findings, run_project_lint
from repro.analysis.engine import load_source
from repro.analysis.project import (
    ProjectIndex,
    changed_files,
    extract_facts,
    lint_items,
)
from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.parallel import WorkItem

CLEAN = "VALUE = 1\n"
DIRTY = "import time\n\nSTAMP = time.time()\n"


def write_tree(root, files):
    for relpath, code in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code)


def facts_for(root, relpath, code):
    write_tree(root, {relpath: code})
    return extract_facts(load_source(root / relpath, root=root))


class TestFactsExtraction:
    def test_definitions_partition(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/helpers.py",
            "CONST = 1\n"
            "shim = lambda x: x\n"
            "def top(x):\n"
            "    def inner(y):\n"
            "        return y\n"
            "    return inner(x)\n",
        )
        assert facts["defs"] == {
            "top": ["top"],
            "assigns": ["CONST"],
            "lambdas": ["shim"],
            "nested": ["inner"],
        }

    def test_bindings_and_from_imports(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/helpers.py",
            "from repro.solvers import solve\n"
            "import numpy as np\n\n"
            "def late():\n"
            "    from repro.sparse import CsrMatrix\n"
            "    return CsrMatrix\n",
        )
        assert facts["bindings"]["solve"] == "repro.solvers.solve"
        assert facts["bindings"]["np"] == "numpy"
        records = facts["from_imports"]
        assert ["repro.solvers", "solve", 1, True] in records
        # Function-level imports are recorded but flagged non-top, so
        # taint never propagates through them.
        assert ["repro.sparse", "CsrMatrix", 5, False] in records

    def test_emissions_by_kind(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/helpers.py",
            "from repro import telemetry as tm\n\n"
            "def f(x):\n"
            "    with tm.span(\"phase.run\"):\n"
            "        tm.count(\"hits\")\n"
            "        tm.observe(\"latency\", 1.0)\n"
            "        tm.count(f\"fam.{x}\")\n",
        )
        emits = facts["emits"]
        assert list(emits["spans"]) == ["phase.run"]
        assert list(emits["counters"]) == ["hits"]
        assert list(emits["distributions"]) == ["latency"]
        assert list(emits["counter_heads"]) == ["fam."]

    def test_registry_only_for_telemetry_module(self, tmp_path):
        code = (
            "KNOWN_SPANS = frozenset({\"a.b\"})\n"
            "KNOWN_COUNTERS = frozenset({\"hits\"})\n"
            "KNOWN_DISTRIBUTIONS = frozenset()\n"
            "KNOWN_COUNTER_PREFIXES = frozenset({\"fam.\"})\n"
        )
        telemetry = facts_for(tmp_path, "repro/telemetry.py", code)
        assert telemetry["registry"]["spans"] == {"a.b": 1}
        assert telemetry["registry"]["counters"] == {"hits": 2}
        assert telemetry["registry"]["prefixes"] == {"fam.": 4}
        other = facts_for(tmp_path, "repro/helpers.py", code)
        assert other["registry"] is None

    def test_boundary_call_shapes(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/campaign/driver.py",
            "from repro.parallel import run_sharded\n\n\n"
            "def solve_items(items, config):\n"
            "    return []\n\n\n"
            "def solve_items_batched(items, config):\n"
            "    return []\n\n\n"
            "def go(items, cfg, batch):\n"
            "    work_fn = solve_items_batched if batch else solve_items\n"
            "    return run_sharded(\n"
            "        items, cfg, workers=2,\n"
            "        executor_factory=lambda: None,\n"
            "        work_fn=work_fn,\n"
            "    )\n",
        )
        (call,) = facts["boundary_calls"]
        # The conditional local resolves to both module-scope names;
        # the executor_factory lambda is parent-side and exempt.
        assert call["local"] == ["solve_items", "solve_items_batched"]
        assert call["bad"] == []
        assert call["args_bad"] == []

    def test_boundary_lambda_work_fn_is_bad(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/campaign/driver.py",
            "from repro.parallel import run_sharded\n\n\n"
            "def go(items, cfg):\n"
            "    return run_sharded(items, cfg, work_fn=lambda i, c: [])\n",
        )
        (call,) = facts["boundary_calls"]
        assert len(call["bad"]) == 1
        assert "lambda" in call["bad"][0][1]

    def test_tainted_exports(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/helpers.py",
            "import time\n"
            "from time import perf_counter\n"
            "import numpy as np\n\n"
            "RNG = np.random.default_rng(0)\n\n\n"
            "def stamp():\n"
            "    return time.time()\n\n\n"
            "def pure(x):\n"
            "    return x + 1\n",
        )
        tainted = facts["tainted"]
        assert "re-export of time.perf_counter" in tainted["perf_counter"]
        assert "RNG instance" in tainted["RNG"]
        assert "calls time.time()" in tainted["stamp"]
        assert "pure" not in tainted

    def test_telemetry_module_is_never_tainted(self, tmp_path):
        facts = facts_for(
            tmp_path, "repro/telemetry.py",
            "from time import perf_counter\n",
        )
        assert facts["tainted"] == {}

    def test_exit_facts_only_for_entry_modules(self, tmp_path):
        code = (
            "import sys\n\n\n"
            "def main(argv=None):\n"
            "    return 0 if argv else 1\n\n\n"
            "sys.exit(main())\n"
        )
        cli = facts_for(tmp_path, "repro/cli.py", code)
        shapes = cli["exits"]["functions"]["main"]
        assert {s["kind"] for s in shapes} == {"int"}
        assert {s["value"] for s in shapes} == {0, 1}
        (raised,) = cli["exits"]["raises"]
        assert raised["fn"] == "<module>"
        assert raised["shape"]["kind"] == "call"
        assert raised["shape"]["target"] == "main"
        other = facts_for(tmp_path, "repro/helpers.py", code)
        assert other["exits"] is None

    def test_facts_round_trip_json(self, tmp_path):
        """The cache stores facts as JSON; the record must be stable."""
        facts = facts_for(
            tmp_path, "repro/campaign/driver.py",
            "from repro.parallel import run_sharded\n"
            "from repro import telemetry as tm\n\n\n"
            "def work(items, config):\n"
            "    tm.count(\"hits\")\n"
            "    return []\n\n\n"
            "def go(items, cfg):\n"
            "    return run_sharded(items, cfg, work_fn=work)\n",
        )
        assert json.loads(json.dumps(facts)) == facts


class TestProjectIndex:
    def build(self, tmp_path, files):
        write_tree(tmp_path, files)
        return ProjectIndex.build([
            extract_facts(load_source(tmp_path / rel, root=tmp_path))
            for rel in files
        ])

    def test_split_qualified_longest_prefix(self, tmp_path):
        index = self.build(tmp_path, {
            "repro/serve/__init__.py": "",
            "repro/serve/profile.py": "def profile_items(i, c):\n    pass\n",
        })
        assert index.split_qualified("repro.serve.profile.profile_items") \
            == ("repro.serve.profile", "profile_items")
        assert index.split_qualified("repro.serve.missing") \
            == ("repro.serve", "missing")
        assert index.split_qualified("other.pkg.name") is None

    def test_resolve_def_verdicts(self, tmp_path):
        index = self.build(tmp_path, {
            "repro/helpers.py": (
                "def top(x):\n"
                "    def inner(y):\n"
                "        return y\n"
                "    return inner\n"
                "shim = lambda x: x\n"
                "VALUE = 1\n"
            ),
        })
        assert index.resolve_def("repro.helpers", "top")[0] is True
        assert index.resolve_def("repro.helpers", "inner")[0] is False
        assert index.resolve_def("repro.helpers", "shim")[0] is False
        assert index.resolve_def("repro.helpers", "missing")[0] is False
        # Plain assignments and unindexed modules cannot be proven
        # either way: trusted.
        assert index.resolve_def("repro.helpers", "VALUE")[0] is None
        assert index.resolve_def("repro.ghost", "anything")[0] is None

    def test_resolve_def_follows_reexport_chain(self, tmp_path):
        index = self.build(tmp_path, {
            "repro/impl.py": "def work(items, config):\n    return []\n",
            "repro/facade.py": "from repro.impl import work\n",
        })
        verdict, detail = index.resolve_def("repro.facade", "work")
        assert verdict is True
        assert "repro.impl" in detail

    def test_first_module_wins_on_duplicates(self, tmp_path):
        facts_a = facts_for(tmp_path, "a/repro/helpers.py", "A = 1\n")
        facts_b = facts_for(tmp_path, "b/repro/helpers.py", "B = 2\n")
        index = ProjectIndex.build([facts_b, facts_a])
        # Build sorts by path, so a/ wins regardless of input order.
        assert index.modules["repro.helpers"]["defs"]["assigns"] == ["A"]


class TestIncrementalCache:
    FILES = {
        "repro/sparse/clean.py": CLEAN,
        "repro/sparse/dirty.py": DIRTY,
    }

    def run(self, tmp_path, **kwargs):
        kwargs.setdefault("cache_path", tmp_path / "cache.json")
        return run_project_lint([tmp_path], root=tmp_path, **kwargs)

    def test_warm_run_hits_everything_and_matches(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cold = self.run(tmp_path)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = self.run(tmp_path)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        # Byte-identity across every renderer: cache statistics are
        # deliberately kept off the output.
        for fmt in ("text", "json", "github", "sarif"):
            assert format_findings(cold, fmt) == format_findings(warm, fmt)

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        assert len(self.run(tmp_path).findings) == 1
        (tmp_path / "repro" / "sparse" / "dirty.py").write_text(CLEAN)
        report = self.run(tmp_path)
        assert (report.cache_hits, report.cache_misses) == (1, 1)
        assert report.findings == []

    def test_rule_set_change_invalidates_everything(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        self.run(tmp_path, rules=["REP001"])
        report = self.run(tmp_path, rules=["REP002"])
        assert (report.cache_hits, report.cache_misses) == (0, 2)

    def test_version_bump_invalidates_everything(self, tmp_path, monkeypatch):
        write_tree(tmp_path, self.FILES)
        self.run(tmp_path)
        monkeypatch.setattr(project, "LINT_CACHE_VERSION", 999)
        report = self.run(tmp_path)
        assert (report.cache_hits, report.cache_misses) == (0, 2)

    @pytest.mark.parametrize("garbage", [
        "{not json", "[]", '{"version": 999, "files": {}}',
    ])
    def test_corrupt_cache_degrades_to_cold_start(self, tmp_path, garbage):
        write_tree(tmp_path, self.FILES)
        self.run(tmp_path)
        (tmp_path / "cache.json").write_text(garbage)
        report = self.run(tmp_path)
        assert (report.cache_hits, report.cache_misses) == (0, 2)
        assert len(report.findings) == 1

    def test_use_cache_false_never_touches_disk(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        report = self.run(tmp_path, use_cache=False)
        assert report.cache_misses == 2
        assert not (tmp_path / "cache.json").exists()

    def test_cache_document_shape(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        self.run(tmp_path)
        payload = json.loads((tmp_path / "cache.json").read_text())
        assert payload["version"] == project.LINT_CACHE_VERSION
        assert isinstance(payload["signature"], str)
        keys = list(payload["files"])
        assert keys == sorted(keys)
        for entry in payload["files"].values():
            assert set(entry) == {"path", "hash", "findings", "facts"}

    def test_unwritable_cache_path_still_lints(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        report = self.run(
            tmp_path, cache_path=tmp_path / "no-such-dir" / "cache.json"
        )
        assert len(report.findings) == 1
        assert not (tmp_path / "no-such-dir").exists()


class TestParallelByteIdentity:
    FILES = {
        "repro/sparse/clean.py": CLEAN,
        "repro/sparse/dirty.py": DIRTY,
        "repro/sparse/more.py": "import os\n\nTOKEN = os.urandom(8)\n",
        "repro/helpers.py": "def pure(x):\n    return x + 1\n",
    }

    def test_workers_output_identical_to_serial(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        serial = run_project_lint(
            [tmp_path], root=tmp_path, use_cache=False
        )
        fanned = run_project_lint(
            [tmp_path], root=tmp_path, use_cache=False, workers=2
        )
        assert serial.findings  # the fixture is deliberately dirty
        for fmt in ("text", "json", "github", "sarif"):
            assert format_findings(serial, fmt) == format_findings(
                fanned, fmt
            )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_syntax_error_raises_in_both_modes(self, tmp_path, workers):
        write_tree(tmp_path, {
            **self.FILES, "repro/sparse/broken.py": "def broken(:\n",
        })
        with pytest.raises(ConfigurationError, match="cannot lint"):
            run_project_lint(
                [tmp_path], root=tmp_path, use_cache=False, workers=workers
            )


class TestLintItemsWorker:
    def item(self, path, root, rules_csv=""):
        return WorkItem(
            index=0, source=(str(path), str(root), rules_csv),
            seed=0, cost=1.0,
        )

    def test_worker_returns_findings_and_facts(self, tmp_path):
        write_tree(tmp_path, {"repro/sparse/dirty.py": DIRTY})
        path = tmp_path / "repro" / "sparse" / "dirty.py"
        (result,) = lint_items([self.item(path, tmp_path)], AcamarConfig())
        assert result.error is None
        entry = result.entry
        assert entry["path"] == "repro/sparse/dirty.py"
        assert entry["findings"][0]["rule"] == "REP001"
        assert entry["facts"]["module"] == "repro.sparse.dirty"

    def test_worker_honours_rule_subset(self, tmp_path):
        write_tree(tmp_path, {"repro/sparse/dirty.py": DIRTY})
        path = tmp_path / "repro" / "sparse" / "dirty.py"
        (result,) = lint_items(
            [self.item(path, tmp_path, "REP002")], AcamarConfig()
        )
        assert result.entry["findings"] == []

    def test_worker_reports_syntax_error_not_raises(self, tmp_path):
        write_tree(tmp_path, {"repro/sparse/broken.py": "def broken(:\n"})
        path = tmp_path / "repro" / "sparse" / "broken.py"
        (result,) = lint_items([self.item(path, tmp_path)], AcamarConfig())
        assert result.entry is None
        assert "cannot lint" in result.error


def git(root, *args):
    subprocess.run(
        ["git", "-C", str(root), "-c", "user.email=t@example.com",
         "-c", "user.name=t", *args],
        check=True, capture_output=True,
    )


class TestChangedFiles:
    @pytest.fixture
    def repo(self, tmp_path):
        write_tree(tmp_path, {
            "repro/sparse/clean.py": CLEAN,
            "repro/sparse/dirty.py": DIRTY,
        })
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", "-A")
        git(tmp_path, "commit", "-q", "-m", "seed")
        return tmp_path

    def test_clean_checkout_has_no_changes(self, repo):
        assert changed_files(repo, "HEAD") == set()

    def test_modified_and_untracked_files_surface(self, repo):
        (repo / "repro" / "sparse" / "dirty.py").write_text(CLEAN)
        (repo / "repro" / "sparse" / "fresh.py").write_text(CLEAN)
        assert changed_files(repo, "HEAD") == {
            "repro/sparse/dirty.py", "repro/sparse/fresh.py",
        }

    def test_bad_ref_is_usage_error(self, repo):
        with pytest.raises(ConfigurationError, match="git"):
            changed_files(repo, "no-such-ref")

    def test_outside_a_repository_is_usage_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="git"):
            changed_files(tmp_path / "nowhere", "HEAD")

    def test_changed_only_keeps_project_findings(self, tmp_path):
        """--diff filters file-scoped findings but never cross-module

        ones: an edit anywhere can break a contract whose finding lands
        in an unchanged file."""
        write_tree(tmp_path, {
            "repro/telemetry.py": (
                "KNOWN_SPANS = frozenset()\n"
                "KNOWN_COUNTERS = frozenset({\"ghost\"})\n"
                "KNOWN_DISTRIBUTIONS = frozenset()\n"
                "KNOWN_COUNTER_PREFIXES = frozenset()\n"
            ),
            "repro/sparse/dirty.py": DIRTY,
        })
        full = run_project_lint([tmp_path], root=tmp_path, use_cache=False)
        assert {f.rule for f in full.findings} == {"REP001", "REP007"}
        diffed = run_project_lint(
            [tmp_path], root=tmp_path, use_cache=False,
            changed_only=set(),
        )
        assert {f.rule for f in diffed.findings} == {"REP007"}
