"""Fixture-driven tests: every rule id fires on a bad snippet and stays
quiet on the matching good snippet.

Each rule's pair is the contract: remove the checker and the bad-snippet
test fails; the good snippets pin down what must NOT be flagged (the
sanctioned idioms)."""

import textwrap

import pytest

from repro.analysis import ALL_CHECKERS, RULE_IDS, checkers_for_rules
from repro.analysis.checkers import (
    DeterminismChecker,
    ExceptionPolicyChecker,
    LayeringChecker,
    NumericSafetyChecker,
    TelemetryNameChecker,
    VirtualClockChecker,
)
from repro.errors import UnknownNameError


def rules(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------- REP001


class TestDeterminism:
    CHECKER = DeterminismChecker()

    @pytest.mark.parametrize("snippet", [
        "import time\nt = time.time()\n",
        "import time\nt = time.monotonic()\n",
        "from datetime import datetime\nd = datetime.now()\n",
        "import os\nr = os.urandom(8)\n",
        "import uuid\nu = uuid.uuid4()\n",
        "import random\nr = random.random()\n",
        "import random\nrandom.shuffle(items)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(seed=None)\n",
        "import numpy as np\nx = np.random.rand(4)\n",
        "for x in {1, 2, 3}:\n    print(x)\n",
        "out = [x for x in set(names)]\n",
    ])
    def test_flags(self, lint_snippet, snippet):
        findings = lint_snippet("repro/sparse/mod.py", snippet, self.CHECKER)
        assert rules(findings) == ["REP001"], snippet

    @pytest.mark.parametrize("snippet", [
        # Explicitly seeded generators are the sanctioned idiom.
        "import numpy as np\nrng = np.random.default_rng(1234)\n",
        "import random\nrng = random.Random(7)\n",
        "for x in sorted(set(names)):\n    print(x)\n",
        "for x in (1, 2, 3):\n    print(x)\n",
        "ok = value in {1, 2, 3}\n",  # membership, not iteration
    ])
    def test_allows(self, lint_snippet, snippet):
        findings = lint_snippet("repro/sparse/mod.py", snippet, self.CHECKER)
        assert findings == [], snippet

    def test_out_of_scope_module_is_skipped(self, lint_snippet):
        code = "import time\nt = time.time()\n"
        assert lint_snippet("repro/campaign.py", code, self.CHECKER) == []
        assert lint_snippet("somepkg/mod.py", code, self.CHECKER) == []


# ---------------------------------------------------------------- REP002


class TestLayering:
    CHECKER = LayeringChecker()

    def test_sparse_must_not_import_upward(self, lint_snippet):
        findings = lint_snippet(
            "repro/sparse/mod.py",
            "from repro.solvers import make_solver\n",
            self.CHECKER,
        )
        assert rules(findings) == ["REP002"]
        assert "sparse" in findings[0].message

    def test_only_cli_imports_cli(self, lint_snippet):
        findings = lint_snippet(
            "repro/serve/mod.py", "from repro.cli import main\n", self.CHECKER
        )
        assert rules(findings) == ["REP002"]
        assert "repro.cli" in findings[0].message

    def test_serve_must_use_parallel_facade(self, lint_snippet):
        findings = lint_snippet(
            "repro/serve/mod.py",
            "from repro.parallel.engine import run_sharded\n",
            self.CHECKER,
        )
        assert rules(findings) == ["REP002"]
        assert "facade" in findings[0].message

    def test_facade_and_foundation_imports_allowed(self, lint_snippet):
        code = (
            "from repro.parallel import run_sharded\n"
            "from repro import telemetry as tm\n"
            "from repro.errors import ConfigurationError\n"
        )
        assert lint_snippet("repro/serve/mod.py", code, self.CHECKER) == []

    def test_root_facade_import_restricted(self, lint_snippet):
        code = "from repro import Acamar\n"
        findings = lint_snippet("repro/sparse/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP002"]
        # cli is sanctioned to use the facade
        assert lint_snippet("repro/cli.py", code, self.CHECKER) == []

    def test_real_tree_is_clean(self, repo_src):
        from repro.analysis import run_lint

        report = run_lint([repo_src], [self.CHECKER])
        assert report.findings == []

    def test_cycle_closing_edge_names_the_loop(self, lint_snippet):
        # gpu → fpga is undeclared, and fpga → gpu is sanctioned, so
        # this edge would close a cycle; the message must walk it.
        findings = lint_snippet(
            "repro/gpu/mod.py", "import repro.fpga\n", self.CHECKER
        )
        assert rules(findings) == ["REP002"]
        assert "closes a dependency cycle" in findings[0].message
        assert "gpu → fpga → gpu" in findings[0].message

    def test_acyclic_undeclared_edge_has_no_cycle_note(self, lint_snippet):
        # metrics → solvers is undeclared but nothing under solvers
        # reaches back to metrics: plain violation, no cycle chain.
        findings = lint_snippet(
            "repro/metrics/mod.py", "import repro.solvers\n", self.CHECKER
        )
        assert rules(findings) == ["REP002"]
        assert "cycle" not in findings[0].message

    def test_cycle_path_helper(self):
        from repro.analysis.checkers.layering import cycle_path

        assert cycle_path("gpu", "fpga") == ["fpga", "gpu"]
        assert cycle_path("metrics", "solvers") is None
        # Sanctioned mutual cycles resolve to the direct loop.
        assert cycle_path("campaign", "parallel") == ["parallel", "campaign"]


# ---------------------------------------------------------------- REP003


class TestNumericSafety:
    CHECKER = NumericSafetyChecker()

    @pytest.mark.parametrize("snippet", [
        "def f(x):\n    return x == 1.5\n",
        "def f(x):\n    return x != -2.25\n",
        "def f(x, y):\n    return float(x) == y\n",
        "import numpy as np\ndef f(x, y):\n    return np.float32(x) == y\n",
    ])
    def test_flags_float_equality(self, lint_snippet, snippet):
        findings = lint_snippet("repro/fpga/mod.py", snippet, self.CHECKER)
        assert rules(findings) == ["REP003"], snippet

    @pytest.mark.parametrize("snippet", [
        # Exact-zero breakdown checks are the sanctioned idiom.
        "def f(rho):\n    return rho == 0.0\n",
        "def f(x):\n    return abs(x - 1.5) < 1e-9\n",
        "def f(x):\n    return x >= 1.5\n",
        "def f(n):\n    return n == 1\n",  # int equality untouched
    ])
    def test_allows(self, lint_snippet, snippet):
        findings = lint_snippet("repro/fpga/mod.py", snippet, self.CHECKER)
        assert findings == [], snippet

    def test_flags_bare_float_cast_in_solver_loop(self, lint_snippet):
        code = textwrap.dedent("""
            def solve(xs):
                out = []
                for x in xs:
                    out.append(float(x))
                return out
        """)
        findings = lint_snippet("repro/solvers/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP003"]
        assert "inner loop" in findings[0].message

    def test_reduction_casts_in_loops_allowed(self, lint_snippet):
        code = textwrap.dedent("""
            import numpy as np

            def solve(r, ar, n):
                for _ in range(n):
                    rho = float(r @ ar)
                    nrm = float(np.linalg.norm(r))
                return rho, nrm
        """)
        assert lint_snippet("repro/solvers/mod.py", code, self.CHECKER) == []

    def test_loop_cast_rule_scoped_to_solvers(self, lint_snippet):
        code = "def f(xs):\n    for x in xs:\n        y = float(x)\n"
        assert lint_snippet("repro/fpga/mod.py", code, self.CHECKER) == []


# ---------------------------------------------------------------- REP004


class TestExceptionPolicy:
    CHECKER = ExceptionPolicyChecker()

    def test_flags_bare_except(self, lint_snippet):
        code = "try:\n    work()\nexcept:\n    cleanup()\n"
        findings = lint_snippet("repro/core/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP004"]

    def test_flags_silent_swallow(self, lint_snippet):
        code = "try:\n    work()\nexcept Exception:\n    pass\n"
        findings = lint_snippet("repro/core/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP004"]
        assert "swallow" in findings[0].message

    def test_recording_handler_allowed(self, lint_snippet):
        code = (
            "try:\n    work()\n"
            "except Exception as exc:\n    failures.append(exc)\n"
        )
        assert lint_snippet("repro/core/mod.py", code, self.CHECKER) == []

    @pytest.mark.parametrize("exc", ["ValueError", "KeyError", "RuntimeError"])
    def test_flags_builtin_domain_raises(self, lint_snippet, exc):
        code = f"def f():\n    raise {exc}('boom')\n"
        findings = lint_snippet("repro/core/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP004"], exc

    @pytest.mark.parametrize("snippet", [
        "from repro.errors import ValidationError\n"
        "def f():\n    raise ValidationError('boom')\n",
        "def f():\n    raise TypeError('api misuse')\n",
        "def f():\n    raise NotImplementedError\n",
        "def f():\n    try:\n        g()\n    except KeyError:\n        raise\n",
    ])
    def test_allows(self, lint_snippet, snippet):
        findings = lint_snippet("repro/core/mod.py", snippet, self.CHECKER)
        assert findings == [], snippet

    def test_flags_foreign_exception_classes(self, lint_snippet):
        code = (
            "from json import JSONDecodeError\n"
            "def f():\n    raise JSONDecodeError('m', 'd', 0)\n"
        )
        findings = lint_snippet("repro/core/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP004"]


# ---------------------------------------------------------------- REP005


class TestTelemetryNames:
    CHECKER = TelemetryNameChecker()

    def test_flags_unregistered_name(self, lint_snippet):
        code = (
            "from repro import telemetry as tm\n"
            "tm.count('serve.definitely_not_registered')\n"
        )
        findings = lint_snippet("repro/serve/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP005"]
        assert "KNOWN_COUNTERS" in findings[0].message

    def test_flags_computed_name(self, lint_snippet):
        code = (
            "from repro import telemetry as tm\n"
            "def f(name):\n    tm.count('prefix_' + name)\n"
        )
        findings = lint_snippet("repro/serve/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP005"]

    def test_registered_literals_and_conditional_allowed(self, lint_snippet):
        code = (
            "from repro import telemetry as tm\n"
            "def f(warm):\n"
            "    tm.count('serve.cache_hits' if warm else"
            " 'serve.cache_misses')\n"
            "    tm.observe('serve.latency_ms', 1.0)\n"
            "    with tm.span('kernel.spmv'):\n        pass\n"
        )
        assert lint_snippet("repro/serve/mod.py", code, self.CHECKER) == []

    def test_dynamic_counter_family_allowed(self, lint_snippet):
        code = (
            "from repro import telemetry as tm\n"
            "def f(solver):\n    tm.count(f'solver_attempts.{solver}')\n"
        )
        assert lint_snippet("repro/core/mod.py", code, self.CHECKER) == []

    def test_dynamic_span_family_not_allowed(self, lint_snippet):
        code = (
            "from repro import telemetry as tm\n"
            "def f(solver):\n"
            "    with tm.span(f'solver_attempts.{solver}'):\n        pass\n"
        )
        findings = lint_snippet("repro/core/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP005"]

    def test_bare_imported_helpers_checked(self, lint_snippet):
        code = (
            "from repro.telemetry import count\n"
            "count('not.a.registered.counter')\n"
        )
        findings = lint_snippet("repro/core/mod.py", code, self.CHECKER)
        assert rules(findings) == ["REP005"]


# ---------------------------------------------------------------- REP006


class TestVirtualClock:
    CHECKER = VirtualClockChecker()

    @pytest.mark.parametrize("snippet", [
        "import time\n",
        "from time import perf_counter\n",
        "import datetime\n",
        "from datetime import timedelta\n",
    ])
    def test_flags_clock_imports_in_serve(self, lint_snippet, snippet):
        findings = lint_snippet("repro/serve/mod.py", snippet, self.CHECKER)
        assert rules(findings) == ["REP006"], snippet

    def test_flags_clock_calls(self, lint_snippet):
        code = "import time\n\ndef f():\n    return time.perf_counter()\n"
        findings = lint_snippet("repro/serve/mod.py", code, self.CHECKER)
        assert len(findings) == 2  # the import and the call

    def test_perf_counter_fine_outside_serve(self, lint_snippet):
        code = "import time\nt = time.perf_counter()\n"
        assert lint_snippet("repro/campaign.py", code, self.CHECKER) == []

    def test_virtual_time_arithmetic_allowed(self, lint_snippet):
        code = (
            "def tick(now_s, tick_ms):\n"
            "    return now_s + tick_ms / 1e3\n"
        )
        assert lint_snippet("repro/serve/mod.py", code, self.CHECKER) == []


# ------------------------------------------------------------- registry


class TestCheckerRegistry:
    def test_all_ten_rules_registered(self):
        assert RULE_IDS == (
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008", "REP009", "REP010",
        )

    def test_partition_splits_by_family(self):
        from repro.analysis.checkers import partition_checkers

        file_checkers, project_checkers = partition_checkers(
            ["REP008", "REP002", "REP007"]
        )
        assert tuple(c.rule_id for c in file_checkers) == ("REP002",)
        assert tuple(c.rule_id for c in project_checkers) == (
            "REP008", "REP007",
        )

    def test_partition_none_means_everything(self):
        from repro.analysis.checkers import (
            ALL_PROJECT_CHECKERS,
            partition_checkers,
        )

        assert partition_checkers(None) == (
            ALL_CHECKERS, ALL_PROJECT_CHECKERS,
        )

    def test_subset_selection_preserves_order_and_dedupes(self):
        subset = checkers_for_rules(["REP004", "REP001", "REP004"])
        assert tuple(c.rule_id for c in subset) == ("REP004", "REP001")

    def test_unknown_rule_raises(self):
        with pytest.raises(UnknownNameError, match="REP999"):
            checkers_for_rules(["REP999"])

    def test_none_means_everything(self):
        assert checkers_for_rules(None) == ALL_CHECKERS
