"""Shared fixtures for the invariant-linter tests.

``lint_snippet`` materializes a code snippet at a chosen *virtual*
module path (``repro/serve/mod.py``) inside a tmp dir, so the
package-scoped checkers see the module name they key on, and runs one
checker (or several) over it.
"""

from pathlib import Path

import pytest

from repro.analysis import run_lint


@pytest.fixture
def lint_snippet(tmp_path):
    def _lint(relpath: str, code: str, *checkers):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code)
        # Package dirs need __init__.py for nothing — the engine walks
        # files directly — but create the root marker for realism.
        report = run_lint([target], list(checkers), root=tmp_path)
        return report.findings

    return _lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write several files, then lint the whole tmp tree."""

    def _lint(files: dict[str, str], *checkers):
        for relpath, code in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(code)
        report = run_lint([tmp_path], list(checkers), root=tmp_path)
        return report

    return _lint


@pytest.fixture
def project_report(tmp_path):
    """Write a virtual repo tree, run the whole-program lint over it.

    Returns the full :class:`LintReport`; tests usually pass a rule
    subset so only the project checker under test fires.  The cache is
    disabled — these fixtures assert rule semantics, not cache
    mechanics (those live in ``test_project.py``).
    """
    from repro.analysis import run_project_lint

    def _run(files: dict[str, str], rules=None):
        for relpath, code in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(code)
        return run_project_lint(
            [tmp_path], rules=rules, root=tmp_path, use_cache=False
        )

    return _run


@pytest.fixture
def repo_src() -> Path:
    """The real src/repro tree (repo layout assumed by CI and tests)."""
    return Path(__file__).resolve().parents[2] / "src" / "repro"
