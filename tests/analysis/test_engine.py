"""Engine mechanics: file discovery, module naming, rendering, and the
baseline round-trip."""

import ast
import json

import pytest

from repro.analysis import (
    Finding,
    LintReport,
    apply_baseline,
    format_findings,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.checkers import DeterminismChecker
from repro.analysis.engine import (
    SourceFile,
    iter_python_files,
    load_source,
    module_name_for,
)
from repro.errors import ConfigurationError


def make_finding(rule="REP001", path="src/repro/x.py", line=3, msg="m"):
    return Finding(rule=rule, path=path, line=line, message=msg)


class TestModuleNaming:
    def test_src_layout(self, tmp_path):
        path = tmp_path / "src" / "repro" / "serve" / "service.py"
        assert module_name_for(path) == "repro.serve.service"

    def test_init_maps_to_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "serve" / "__init__.py"
        assert module_name_for(path) == "repro.serve"
        root = tmp_path / "src" / "repro" / "__init__.py"
        assert module_name_for(root) == "repro"

    def test_outside_repro_is_none(self, tmp_path):
        assert module_name_for(tmp_path / "tests" / "test_x.py") is None


class TestDiscovery:
    def test_walk_dedup_and_pycache_exclusion(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        cache = sub / "__pycache__"
        cache.mkdir()
        (cache / "b.cpython-311.py").write_text("nope\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        names = [f.name for f in files]
        assert names == ["a.py", "b.py"]

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            list(iter_python_files([tmp_path / "nope"]))

    def test_syntax_error_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(ConfigurationError, match="cannot lint"):
            load_source(bad)

    def test_findings_sorted_by_path_line_rule(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "sparse").mkdir()
        f = tmp_path / "repro" / "sparse" / "m.py"
        f.write_text(
            "import time\nimport os\n"
            "b = os.urandom(4)\na = time.time()\n"
        )
        report = run_lint([f], [DeterminismChecker()], root=tmp_path)
        assert [x.line for x in report.findings] == [3, 4]
        assert report.files_checked == 1


class TestRendering:
    def make_report(self):
        return LintReport(
            findings=[make_finding(msg="bad % and\nnewline")],
            files_checked=7,
        )

    def test_text(self):
        text = format_findings(self.make_report(), "text")
        assert "src/repro/x.py:3: REP001" in text
        assert "1 finding(s) in 7 file(s)" in text

    def test_json_schema(self):
        doc = json.loads(format_findings(self.make_report(), "json"))
        assert doc["schema_version"] == 1
        assert doc["files_checked"] == 7
        assert doc["findings"][0]["rule"] == "REP001"

    def test_github_annotations_escape_workflow_data(self):
        out = format_findings(self.make_report(), "github")
        line = out.splitlines()[0]
        assert line.startswith(
            "::error file=src/repro/x.py,line=3,title=REP001::"
        )
        assert "%25" in line and "%0A" in line and "\n" not in line

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown lint format"):
            format_findings(self.make_report(), "xml")


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path):
        report = LintReport(
            findings=[
                make_finding(line=3),
                make_finding(line=9),  # same fingerprint, second instance
                make_finding(rule="REP004", msg="other"),
            ],
            files_checked=2,
        )
        path = write_baseline(report, tmp_path / "baseline.json")
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        # Two fingerprints, one carrying count=2.
        counts = {e.get("count", 1) for e in payload["findings"]}
        assert counts == {1, 2}

        cleaned = apply_baseline(report, load_baseline(path))
        assert cleaned.clean
        assert cleaned.suppressed == 3
        assert cleaned.stale_baseline == []

    def test_allowance_is_counted_not_blanket(self, tmp_path):
        one = LintReport(findings=[make_finding(line=3)], files_checked=1)
        path = write_baseline(one, tmp_path / "baseline.json")
        # A second occurrence of the same fingerprint is NOT grandfathered.
        two = LintReport(
            findings=[make_finding(line=3), make_finding(line=9)],
            files_checked=1,
        )
        cleaned = apply_baseline(two, load_baseline(path))
        assert cleaned.suppressed == 1
        assert len(cleaned.findings) == 1

    def test_stale_entries_surface(self, tmp_path):
        report = LintReport(findings=[make_finding()], files_checked=1)
        path = write_baseline(report, tmp_path / "baseline.json")
        cleaned = apply_baseline(
            LintReport(findings=[], files_checked=1), load_baseline(path)
        )
        assert cleaned.clean
        assert len(cleaned.stale_baseline) == 1
        assert "REP001" in cleaned.stale_baseline[0]
        assert "stale baseline entry" in format_findings(cleaned, "text")

    def test_prune_trims_counts_and_drops_stale(self, tmp_path):
        # Grandfather fingerprint A twice and B once ...
        path = write_baseline(
            LintReport(
                findings=[
                    make_finding(line=3), make_finding(line=9),
                    make_finding(rule="REP004", msg="other"),
                ],
                files_checked=1,
            ),
            tmp_path / "baseline.json",
        )
        # ... then only one A still fires: prune trims A to 1, drops B.
        from repro.analysis import prune_baseline

        now = LintReport(findings=[make_finding(line=3)], files_checked=1)
        kept, dropped = prune_baseline(now, load_baseline(path), path)
        assert (kept, dropped) == (1, 2)
        assert load_baseline(path) == {make_finding().fingerprint(): 1}
        cleaned = apply_baseline(now, load_baseline(path))
        assert cleaned.clean and cleaned.stale_baseline == []

    def test_missing_baseline_is_usage_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_baseline(bad)
        bad.write_text('{"version": 1}')
        with pytest.raises(ConfigurationError, match="findings"):
            load_baseline(bad)

    def test_fingerprint_is_line_free(self):
        a = make_finding(line=3)
        b = make_finding(line=400)
        assert a.fingerprint() == b.fingerprint()


class TestSourceFileHelpers:
    def test_finding_accepts_node_or_line(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("x = 1\n")
        source = load_source(f, root=tmp_path)
        assert isinstance(source, SourceFile)
        node = source.tree.body[0]
        assert isinstance(node, ast.Assign)
        assert source.finding("REP001", node, "m").line == 1
        assert source.finding("REP001", 42, "m").line == 42
        assert source.display_path == "m.py"
