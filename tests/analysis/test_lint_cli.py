"""``repro lint`` CLI contract: exit codes, formats, baseline flags.

Exit-code contract (matching the pinned ``repro solve`` style):
0 = clean tree, 1 = findings remain, 2 = usage error.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

CLEAN_SNIPPET = "VALUE = 1\n"

# Fires REP001 (wall clock in a determinism-scoped package).
DIRTY_SNIPPET = "import time\n\nSTAMP = time.time()\n"


@pytest.fixture
def tree(tmp_path):
    """A tiny lintable tree with one clean and one dirty repro module."""
    pkg = tmp_path / "repro" / "sparse"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN_SNIPPET)
    (pkg / "dirty.py").write_text(DIRTY_SNIPPET)
    return tmp_path


def run(args):
    return main(["lint", *args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert run([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert run([str(tree)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "dirty.py" in out

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert run([str(tree), "--rules", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tree, tmp_path, capsys):
        missing = tmp_path / "no-such-baseline.json"
        assert run([str(tree), "--baseline", str(missing)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert run([str(tmp_path / "ghost")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_rule_selection_can_pass_dirty_tree(self, tree):
        # Only the layering rule runs; the wall-clock call is invisible.
        assert run([str(tree), "--rules", "REP002"]) == 0


class TestBaselineFlow:
    def test_write_baseline_then_clean_run(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert run([str(tree), "--write-baseline", "--baseline",
                    str(baseline)]) == 0
        assert "wrote baseline" in capsys.readouterr().out

        payload = json.loads(baseline.read_text())
        assert payload["findings"], "baseline should record the violation"

        # Grandfathered finding is suppressed; the run is clean.
        assert run([str(tree), "--baseline", str(baseline)]) == 0
        assert "baseline-suppressed" in capsys.readouterr().out

    def test_new_violation_still_fails_with_baseline(
        self, tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert run([str(tree), "--write-baseline", "--baseline",
                    str(baseline)]) == 0
        capsys.readouterr()
        (tree / "repro" / "sparse" / "fresh.py").write_text(
            "import os\n\nTOKEN = os.urandom(8)\n"
        )
        assert run([str(tree), "--baseline", str(baseline)]) == 1
        assert "fresh.py" in capsys.readouterr().out


class TestFormats:
    def test_json_format_parses(self, tree, capsys):
        assert run([str(tree), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["findings"][0]["rule"] == "REP001"

    def test_github_format_emits_annotations(self, tree, capsys):
        assert run([str(tree), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=REP001" in out

    def test_bad_format_rejected_by_argparse(self, tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run([str(tree), "--format", "sarif"])
        assert excinfo.value.code == 2


class TestRealTree:
    def test_repo_is_clean_under_committed_baseline(self, capsys):
        """The headline guarantee: ``repro lint`` passes on the repo."""
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert run([str(src)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_committed_baseline_is_empty(self):
        from repro.analysis import DEFAULT_BASELINE

        payload = json.loads(DEFAULT_BASELINE.read_text())
        assert payload["findings"] == []
