"""``repro lint`` CLI contract: exit codes, formats, baseline flags.

Exit-code contract (matching the pinned ``repro solve`` style):
0 = clean tree, 1 = findings remain, 2 = usage error.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main

CLEAN_SNIPPET = "VALUE = 1\n"

# Fires REP001 (wall clock in a determinism-scoped package).
DIRTY_SNIPPET = "import time\n\nSTAMP = time.time()\n"


@pytest.fixture
def tree(tmp_path):
    """A tiny lintable tree with one clean and one dirty repro module."""
    pkg = tmp_path / "repro" / "sparse"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN_SNIPPET)
    (pkg / "dirty.py").write_text(DIRTY_SNIPPET)
    return tmp_path


@pytest.fixture(autouse=True)
def _isolated_cache_cwd(tmp_path_factory, monkeypatch):
    """Run every CLI invocation from a scratch cwd.

    The default incremental-cache location is ``.repro-lint-cache.json``
    in the working directory; without this, CLI tests would write (and
    cross-contaminate) a cache file inside the repo checkout.
    """
    monkeypatch.chdir(tmp_path_factory.mktemp("lint-cwd"))


def run(args):
    return main(["lint", *args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert run([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert run([str(tree)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "dirty.py" in out

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert run([str(tree), "--rules", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tree, tmp_path, capsys):
        missing = tmp_path / "no-such-baseline.json"
        assert run([str(tree), "--baseline", str(missing)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert run([str(tmp_path / "ghost")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_rule_selection_can_pass_dirty_tree(self, tree):
        # Only the layering rule runs; the wall-clock call is invisible.
        assert run([str(tree), "--rules", "REP002"]) == 0


class TestBaselineFlow:
    def test_write_baseline_then_clean_run(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert run([str(tree), "--write-baseline", "--baseline",
                    str(baseline)]) == 0
        assert "wrote baseline" in capsys.readouterr().out

        payload = json.loads(baseline.read_text())
        assert payload["findings"], "baseline should record the violation"

        # Grandfathered finding is suppressed; the run is clean.
        assert run([str(tree), "--baseline", str(baseline)]) == 0
        assert "baseline-suppressed" in capsys.readouterr().out

    def test_new_violation_still_fails_with_baseline(
        self, tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert run([str(tree), "--write-baseline", "--baseline",
                    str(baseline)]) == 0
        capsys.readouterr()
        (tree / "repro" / "sparse" / "fresh.py").write_text(
            "import os\n\nTOKEN = os.urandom(8)\n"
        )
        assert run([str(tree), "--baseline", str(baseline)]) == 1
        assert "fresh.py" in capsys.readouterr().out


class TestFormats:
    def test_json_format_parses(self, tree, capsys):
        assert run([str(tree), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["findings"][0]["rule"] == "REP001"

    def test_github_format_emits_annotations(self, tree, capsys):
        assert run([str(tree), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=REP001" in out

    def test_bad_format_rejected_by_argparse(self, tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run([str(tree), "--format", "xml"])
        assert excinfo.value.code == 2

    def test_sarif_format_parses(self, tree, capsys):
        assert run([str(tree), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "REP001"

    def test_out_writes_report_file(self, tree, tmp_path, capsys):
        target = tmp_path / "lint.sarif"
        assert run([
            str(tree), "--format", "sarif", "--out", str(target)
        ]) == 1
        captured = capsys.readouterr()
        assert "wrote lint report to" in captured.err
        # The file carries exactly what stdout showed.
        assert target.read_text() == captured.out


class TestIncrementalFlags:
    def test_cache_and_workers_do_not_change_output(self, tree, capsys):
        outputs = []
        for extra in ([], [], ["--no-cache"], ["--workers", "2"]):
            assert run([str(tree), "--format", "json", *extra]) == 1
            outputs.append(capsys.readouterr().out)
        # Cold cache, warm cache, no cache, parallel: byte-identical.
        assert len(set(outputs)) == 1

    def test_custom_cache_path(self, tree, tmp_path):
        cache = tmp_path / "nested.json"
        assert run([str(tree), "--cache", str(cache)]) == 1
        assert json.loads(cache.read_text())["files"]

    def test_no_cache_leaves_no_file_behind(self, tree):
        assert run([str(tree), "--no-cache"]) == 1
        assert not (Path.cwd() / ".repro-lint-cache.json").exists()


def git(root, *args):
    subprocess.run(
        ["git", "-C", str(root), "-c", "user.email=t@example.com",
         "-c", "user.name=t", *args],
        check=True, capture_output=True,
    )


class TestDiffMode:
    def test_diff_outside_a_repository_exits_two(self, tree, capsys):
        # The autouse fixture chdirs to a scratch (non-git) directory.
        assert run([str(tree), "--diff", "HEAD"]) == 2
        assert "git" in capsys.readouterr().err

    def test_diff_filters_unchanged_findings(
        self, tree, monkeypatch, capsys
    ):
        git(tree, "init", "-q")
        git(tree, "add", "-A")
        git(tree, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tree)
        # The full lint is red, but nothing changed since HEAD.
        assert run([str(tree), "--no-cache"]) == 1
        assert run([str(tree), "--no-cache", "--diff", "HEAD"]) == 0
        capsys.readouterr()
        # A fresh (untracked) violation surfaces; the committed one
        # stays filtered.
        (tree / "repro" / "sparse" / "fresh.py").write_text(DIRTY_SNIPPET)
        assert run([str(tree), "--no-cache", "--diff", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "dirty.py" not in out

    def test_bad_ref_exits_two(self, tree, monkeypatch, capsys):
        git(tree, "init", "-q")
        git(tree, "add", "-A")
        git(tree, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tree)
        assert run([str(tree), "--diff", "no-such-ref"]) == 2
        assert "git" in capsys.readouterr().err


class TestPruneBaseline:
    def test_prune_round_trip(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # Grandfather two violations across two files.
        (tree / "repro" / "sparse" / "also.py").write_text(DIRTY_SNIPPET)
        assert run([str(tree), "--write-baseline", "--baseline",
                    str(baseline)]) == 0
        assert len(json.loads(baseline.read_text())["findings"]) == 2

        # Fix one of them; pruning drops its (now stale) entry and the
        # suppressed run stays clean with no stale-baseline noise.
        (tree / "repro" / "sparse" / "also.py").write_text(CLEAN_SNIPPET)
        assert run([str(tree), "--prune-baseline", "--baseline",
                    str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "kept 1" in captured.err and "dropped 1" in captured.err
        entries = json.loads(baseline.read_text())["findings"]
        assert len(entries) == 1 and "dirty.py" in entries[0]["path"]
        assert run([str(tree), "--baseline", str(baseline)]) == 0
        assert "stale" not in capsys.readouterr().out

    def test_prune_keeps_still_firing_entries_intact(
        self, tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert run([str(tree), "--write-baseline", "--baseline",
                    str(baseline)]) == 0
        before = baseline.read_text()
        assert run([str(tree), "--prune-baseline", "--baseline",
                    str(baseline)]) == 0
        assert "dropped 0" in capsys.readouterr().err
        assert baseline.read_text() == before

    def test_write_and_prune_are_mutually_exclusive(self, tree, capsys):
        assert run([str(tree), "--write-baseline", "--prune-baseline"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestRealTree:
    def test_repo_is_clean_under_committed_baseline(self, capsys):
        """The headline guarantee: ``repro lint`` passes on the repo."""
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert run([str(src)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_committed_baseline_is_empty(self):
        from repro.analysis import DEFAULT_BASELINE

        payload = json.loads(DEFAULT_BASELINE.read_text())
        assert payload["findings"] == []
