"""Tests for the ``repro chaos`` CLI (exit contract + determinism)."""

import json

from repro.cli import main


class TestChaosCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["chaos", "--chaos-seed", "0", "--profile", "solver"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_json_format_parses(self, capsys):
        assert main([
            "chaos", "--chaos-seed", "1", "--profile", "solver",
            "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["chaos_seed"] == 1
        assert document["clean"] is True

    def test_out_file_byte_identical_across_runs(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        argv = ["chaos", "--chaos-seed", "0", "--profile", "solver"]
        assert main(argv + ["--out", str(first)]) == 0
        assert main(argv + ["--out", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_violations_exit_one(self, capsys, monkeypatch):
        import repro.faults

        from repro.faults.runner import (
            ChaosFinding,
            ChaosReport,
            ProfileOutcome,
        )

        finding = ChaosFinding(
            "pool", "CHS-POOL-ORDER", "campaign order not preserved"
        )
        broken = ChaosReport(
            chaos_seed=0,
            profiles=(
                ProfileOutcome("pool", {}, {}, (finding,)),
            ),
        )
        monkeypatch.setattr(
            repro.faults, "run_chaos", lambda seed, profiles: broken
        )
        assert main(["chaos", "--chaos-seed", "0"]) == 1
        out = capsys.readouterr().out
        assert "pool: CHS-POOL-ORDER campaign order not preserved" in out

    def test_usage_error_exits_two(self, capsys, monkeypatch):
        import repro.faults

        from repro.errors import UnknownNameError

        def explode(seed, profiles):
            raise UnknownNameError("unknown chaos profile 'x'")

        monkeypatch.setattr(repro.faults, "run_chaos", explode)
        assert main(["chaos", "--chaos-seed", "0"]) == 2
        assert "chaos:" in capsys.readouterr().err


class TestChaosClusterProfile:
    def test_cluster_profile_clean_and_deterministic(
        self, tmp_path, capsys
    ):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        argv = ["chaos", "--chaos-seed", "7", "--profile", "cluster"]
        assert main(argv + ["--out", str(first)]) == 0
        assert main(argv + ["--out", str(second)]) == 0
        out = capsys.readouterr().out
        assert "profile cluster" in out
        assert "0 violation(s)" in out
        assert first.read_bytes() == second.read_bytes()
