"""Tests for the seeded fault schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import EXHAUSTION_BUDGET, FaultPlan


class TestPoolSchedule:
    def test_deterministic_for_a_seed(self):
        first = FaultPlan(7).pool_schedule(10)
        second = FaultPlan(7).pool_schedule(10)
        assert first == second

    def test_different_seeds_differ(self):
        schedules = {FaultPlan(seed).pool_schedule(10) for seed in range(6)}
        assert len(schedules) > 1

    def test_both_recovery_transitions_guaranteed(self):
        # Every seed must exercise both the transient-retry path and
        # the WorkerLost exhaustion path.
        for seed in range(20):
            schedule = FaultPlan(seed).pool_schedule(
                8, max_item_attempts=2
            )
            assert schedule.lethal_indices(2), f"seed {seed}: no lethal"
            assert schedule.transient_indices(2), f"seed {seed}: no transient"

    def test_kill_budgets_bounded_by_attempts(self):
        schedule = FaultPlan(3).pool_schedule(12, max_item_attempts=2)
        assert all(0 <= k <= 2 for k in schedule.item_kills)
        assert len(schedule.item_kills) == 12
        assert len(schedule.item_stalls) == 12

    def test_too_few_items_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(0).pool_schedule(1)


class TestServeSchedule:
    def test_deterministic_for_a_seed(self):
        first = FaultPlan(5).serve_schedule(duration_s=1.0, slots=3)
        second = FaultPlan(5).serve_schedule(duration_s=1.0, slots=3)
        assert first == second

    def test_storm_window_inside_run(self):
        schedule = FaultPlan(2).serve_schedule(duration_s=1.0, slots=3)
        assert 0.0 < schedule.storm_start_s < 1.0
        assert schedule.storm_duration_s > 0.0
        assert schedule.storm_deadline_ms < 10.0

    def test_device_faults_target_real_slots(self):
        schedule = FaultPlan(4).serve_schedule(duration_s=1.0, slots=3)
        assert len(schedule.device_faults) >= 2
        for event in schedule.device_faults:
            assert 0 <= event.slot < 3
            assert event.outage_s > 0.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(0).serve_schedule(duration_s=0.0, slots=3)
        with pytest.raises(ConfigurationError):
            FaultPlan(0).serve_schedule(duration_s=1.0, slots=0)


class TestSolverSchedule:
    def test_case_zero_is_always_exhaustion(self):
        for seed in range(10):
            schedule = FaultPlan(seed).solver_schedule(3)
            assert schedule.divergence_budgets[0] == EXHAUSTION_BUDGET

    def test_recovery_budgets_bounded(self):
        schedule = FaultPlan(1).solver_schedule(4, max_recovery_budget=2)
        assert all(1 <= b <= 2 for b in schedule.divergence_budgets[1:])
        assert len(schedule.stall_attempts) == 4

    def test_deterministic_for_a_seed(self):
        assert FaultPlan(9).solver_schedule(3) == FaultPlan(9).solver_schedule(3)

    def test_zero_cases_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(0).solver_schedule(0)
