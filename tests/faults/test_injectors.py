"""Tests for the fault injectors (the seam adapters)."""

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.datasets import poisson_2d
from repro.faults.injectors import (
    ChaosExecutorFactory,
    ForcedDivergenceHook,
    chaos_service_config,
    storm_requests,
)
from repro.faults.plan import FaultPlan, PoolFaultSchedule
from repro.parallel import WorkItem
from repro.solvers.base import SolveStatus
from repro.telemetry import Telemetry


def items(n):
    return [
        WorkItem(index=i, source=f"s{i}", seed=i, cost=1.0) for i in range(n)
    ]


def echo(chunk, config):
    return [it.index for it in chunk]


class TestChaosExecutor:
    def test_marked_chunk_breaks_and_consumes_budget(self):
        schedule = PoolFaultSchedule(
            item_kills=(1, 0, 2), item_stalls=(False, False, False)
        )
        factory = ChaosExecutorFactory(schedule)
        executor = factory(2)
        collector = Telemetry()
        with collector.activate():
            future = executor.submit(echo, items(3), None)
            with pytest.raises(BrokenProcessPool):
                future.result()
            # One death consumed from each marked member of the chunk.
            assert executor.kills_remaining == {0: 0, 2: 1}
            # Innocent singleton now completes; item 2 still breaks once.
            assert executor.submit(echo, items(3)[:2], None).result() == [0, 1]
            with pytest.raises(BrokenProcessPool):
                executor.submit(echo, [items(3)[2]], None).result()
            assert executor.submit(echo, [items(3)[2]], None).result() == [2]
        assert collector.counters["faults.injected.worker_death"] == 3

    def test_stalls_counted_but_harmless(self):
        schedule = PoolFaultSchedule(
            item_kills=(0, 0), item_stalls=(True, False)
        )
        factory = ChaosExecutorFactory(schedule)
        executor = factory(2)
        collector = Telemetry()
        with collector.activate():
            assert executor.submit(echo, items(2), None).result() == [0, 1]
        assert collector.counters["faults.injected.worker_stall"] == 1

    def test_factory_counts_pools_and_shares_budgets(self):
        schedule = PoolFaultSchedule(
            item_kills=(2, 0), item_stalls=(False, False)
        )
        factory = ChaosExecutorFactory(schedule)
        first, second = factory(2), factory(2)
        assert factory.pools_created == 2
        # The budget belongs to the item, not the pool.
        assert first.kills_remaining is second.kills_remaining


class TestForcedDivergenceHook:
    def converged_result(self):
        problem = poisson_2d(8)
        from repro import Acamar

        return Acamar().solve(problem.matrix, problem.b).final

    def test_replaces_status_within_budget(self):
        hook = ForcedDivergenceHook(budget=2, stall_attempts=frozenset({1}))
        real = self.converged_result()
        collector = Telemetry()
        with collector.activate():
            forced = hook("cg", 0, real)
            assert forced is not None
            assert forced.status is SolveStatus.DIVERGED
            assert forced is not real
            forced = hook("bicgstab", 1, real)
            assert forced.status is SolveStatus.DIVERGED
            assert hook("jacobi", 2, real) is None
        assert hook.forced == ["cg", "bicgstab"]
        assert collector.counters["faults.injected.divergence"] == 2
        assert collector.counters["faults.injected.reconfig_stall"] == 1

    def test_preserves_result_payload(self):
        hook = ForcedDivergenceHook(budget=1)
        real = self.converged_result()
        forced = hook("cg", 0, real)
        assert forced.iterations == real.iterations
        assert forced.solver == real.solver
        assert forced.x is real.x


class TestServeInjectors:
    def test_storm_rewrites_deadlines_inside_window_only(self):
        plan = FaultPlan(0)
        schedule = plan.serve_schedule(duration_s=0.8, slots=3)
        collector = Telemetry()
        with collector.activate():
            requests = storm_requests(
                schedule, seed=0, duration_s=0.8, sources=("Wa", "Li")
            )
        stormed = [
            r
            for r in requests
            if schedule.storm_start_s <= r.arrival_s < schedule.storm_end_s
        ]
        assert stormed, "storm window must cover traffic"
        budget = schedule.storm_deadline_ms * 1e-3
        for request in stormed:
            assert request.deadline_s == pytest.approx(
                request.arrival_s + budget
            )
        assert (
            collector.counters["faults.injected.deadline_storm"]
            == len(stormed)
        )

    def test_service_config_carries_pressure_knobs(self):
        plan = FaultPlan(1)
        schedule = plan.serve_schedule(duration_s=0.8, slots=3)
        collector = Telemetry()
        with collector.activate():
            config = chaos_service_config(schedule, slots=3)
        assert config.queue_capacity == schedule.queue_capacity
        assert config.cache_capacity == schedule.cache_capacity
        assert config.device_faults == schedule.device_faults
        assert config.fleet.total_slots == 3
        assert collector.counters["faults.injected.device_outage"] == len(
            schedule.device_faults
        )
