"""Cluster chaos profile: schedule shape, invariants, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import run_chaos
from repro.faults.injectors import chaos_cluster_config
from repro.faults.plan import FaultPlan
from repro.faults.runner import run_cluster_profile
from repro.serve.cluster import FleetFaultEvent, ForcedScaleEvent


class TestClusterSchedule:
    def test_schedule_shape(self):
        schedule = FaultPlan(3).cluster_schedule(duration_s=8.0)
        assert 1400.0 <= schedule.rate_rps <= 2000.0
        assert 0.0 < schedule.mid_drain_at_s < 8.0
        assert len(schedule.fleet_faults) >= 2
        for fault in schedule.fleet_faults:
            assert isinstance(fault, FleetFaultEvent)
            assert 0.0 < fault.at_s < 8.0
            assert fault.outage_s > 0.0
        actions = [e.action for e in schedule.forced_scale]
        assert "add" in actions and "drain" in actions

    def test_one_outage_lands_after_the_mid_drain(self):
        schedule = FaultPlan(3).cluster_schedule(duration_s=8.0)
        assert any(
            fault.at_s > schedule.mid_drain_at_s
            for fault in schedule.fleet_faults
        )

    def test_schedule_deterministic_per_seed(self):
        a = FaultPlan(5).cluster_schedule(duration_s=8.0)
        b = FaultPlan(5).cluster_schedule(duration_s=8.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan(5).cluster_schedule(duration_s=8.0)
        b = FaultPlan(6).cluster_schedule(duration_s=8.0)
        assert a != b

    def test_duration_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(0).cluster_schedule(duration_s=0.0)


class TestChaosClusterConfig:
    def test_config_carries_the_schedule(self):
        schedule = FaultPlan(1).cluster_schedule(duration_s=8.0)
        config = chaos_cluster_config(schedule)
        assert config.fleet_faults == schedule.fleet_faults
        assert config.forced_scale == schedule.forced_scale
        # Tight capacities on purpose: pressure and evictions must be
        # real for the audits to mean anything.
        assert config.cache_capacity <= 8
        assert config.queue_capacity <= 1024

    def test_events_are_simulator_types(self):
        schedule = FaultPlan(1).cluster_schedule(duration_s=8.0)
        config = chaos_cluster_config(schedule)
        assert all(
            isinstance(e, FleetFaultEvent) for e in config.fleet_faults
        )
        assert all(
            isinstance(e, ForcedScaleEvent) for e in config.forced_scale
        )


class TestClusterProfile:
    def test_invariants_hold_and_faults_land(self):
        outcome = run_cluster_profile(FaultPlan(7))
        assert outcome.clean, [f.render() for f in outcome.findings]
        assert outcome.injected["faults.injected.fleet_outage"] >= 1
        assert outcome.injected["faults.injected.forced_scale"] >= 1
        assert outcome.observed["requests"]["unaccounted"] == 0
        assert outcome.observed["requests"]["shed_overflow"] > 0

    def test_profile_deterministic(self):
        a = run_cluster_profile(FaultPlan(7))
        b = run_cluster_profile(FaultPlan(7))
        assert a.as_dict() == b.as_dict()

    def test_run_chaos_cluster_subset_byte_identical(self):
        a = run_chaos(7, profiles=("cluster",))
        b = run_chaos(7, profiles=("cluster",))
        assert a.to_json() == b.to_json()
        assert a.clean
