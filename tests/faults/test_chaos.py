"""Tests for the chaos runner: profiles, invariants, determinism."""

import pytest

from repro.errors import UnknownNameError
from repro.faults import run_chaos
from repro.faults.plan import FaultPlan
from repro.faults.runner import (
    run_pool_profile,
    run_serve_profile,
    run_solver_profile,
)


class TestPoolProfile:
    def test_invariants_hold_and_faults_land(self):
        outcome = run_pool_profile(FaultPlan(0))
        assert outcome.clean, [f.render() for f in outcome.findings]
        assert outcome.injected["faults.injected.worker_death"] > 0
        assert outcome.observed["worker_lost"], "no WorkerLost item exercised"
        assert outcome.observed["pool_restarts"] > 0

    def test_detects_dropped_results(self, monkeypatch):
        # If the engine loses an item, the chaos audit must say so —
        # prove the findings path fires by faking a lossy engine.
        import repro.faults.runner as runner

        real_run_sharded = runner.run_sharded

        def lossy_run_sharded(items, config, **kwargs):
            outcome = real_run_sharded(items, config, **kwargs)
            outcome.results = outcome.results[:-1]  # drop the tail item
            return outcome

        monkeypatch.setattr(runner, "run_sharded", lossy_run_sharded)
        outcome = run_pool_profile(FaultPlan(0))
        assert not outcome.clean
        assert any(f.check == "CHS-POOL-ORDER" for f in outcome.findings)

    def test_detects_missing_failure_counters(self, monkeypatch):
        # Strip the failure counters off the merged telemetry: the
        # parity invariant (satellite of this PR) must catch it.
        import repro.faults.runner as runner

        real_run_sharded = runner.run_sharded

        def amnesiac_run_sharded(items, config, **kwargs):
            outcome = real_run_sharded(items, config, **kwargs)
            outcome.telemetry.counters.pop("campaign.failures", None)
            return outcome

        monkeypatch.setattr(runner, "run_sharded", amnesiac_run_sharded)
        outcome = run_pool_profile(FaultPlan(0))
        assert any(f.check == "CHS-POOL-PARITY" for f in outcome.findings)


class TestServeProfile:
    def test_invariants_hold_under_storm_and_outages(self):
        outcome = run_serve_profile(FaultPlan(0))
        assert outcome.clean, [f.render() for f in outcome.findings]
        assert outcome.injected["faults.injected.deadline_storm"] > 0
        assert outcome.injected["faults.injected.device_outage"] > 0
        # The run must have been genuinely stressed, not a quiet pass.
        requests = outcome.observed["requests"]
        assert requests["unaccounted"] == 0
        assert requests["shed"] + requests["expired"] > 0
        assert outcome.observed["cache"]["lookups"]["evictions"] > 0

    def test_detects_unaccounted_requests(self, monkeypatch):
        import repro.faults.runner as runner

        real_run_service = runner.run_service

        def leaky_run_service(requests, config):
            report = real_run_service(requests, config)
            report.responses = report.responses[:-1]
            return report

        monkeypatch.setattr(runner, "run_service", leaky_run_service)
        outcome = run_serve_profile(FaultPlan(0))
        assert any(
            f.check in ("CHS-SERVE-ACCOUNT", "CHS-SERVE-IDS")
            for f in outcome.findings
        )


class TestSolverProfile:
    def test_exhaustion_and_recovery_cases_clean(self):
        outcome = run_solver_profile(FaultPlan(0))
        assert outcome.clean, [f.render() for f in outcome.findings]
        cases = outcome.observed["cases"]
        # Case 0 exhausts the whole chain without converging; at least
        # one later case recovers via the Modifier.
        assert cases[0]["converged"] is False
        assert len(cases[0]["attempt_chain"]) >= 2
        assert any(c["converged"] for c in cases[1:])
        for case in cases:
            chain = case["attempt_chain"]
            assert len(set(chain)) == len(chain)  # no repeats, ever
            assert sum(case["solver_attempts"].values()) == len(chain)


class TestRunChaos:
    def test_all_profiles_clean_on_fixed_seeds(self):
        for seed in (0, 1):
            report = run_chaos(seed)
            assert report.clean, [f.render() for f in report.findings]
            assert [p.profile for p in report.profiles] == [
                "pool", "serve", "solver", "cluster", "placement",
            ]

    def test_byte_identical_reports_for_a_seed(self):
        assert run_chaos(2).to_json() == run_chaos(2).to_json()

    def test_profile_subset(self):
        report = run_chaos(0, profiles=("solver",))
        assert [p.profile for p in report.profiles] == ["solver"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(UnknownNameError):
            run_chaos(0, profiles=("pool", "bogus"))

    def test_report_renders_lint_style(self):
        report = run_chaos(0, profiles=("solver",))
        text = report.render_text()
        assert "violation(s)" in text
        assert f"chaos seed {report.chaos_seed}" in text
        document = report.as_dict()
        assert document["clean"] is True
        assert document["findings"] == 0
