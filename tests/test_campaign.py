"""Tests for the campaign runner."""

import csv

import pytest

from repro.campaign import run_campaign
from repro.config import AcamarConfig
from repro.datasets import poisson_2d
from repro.errors import DatasetError
from repro.sparse.io import write_matrix_market


class TestSources:
    def test_dataset_keys(self):
        report = run_campaign(["Wa", "Li"])
        assert len(report.entries) == 2
        assert report.convergence_rate == 1.0

    def test_problem_instances(self):
        report = run_campaign([poisson_2d(10), poisson_2d(12)])
        assert [e.n for e in report.entries] == [100, 144]

    def test_mtx_files(self, tmp_path):
        problem = poisson_2d(8)
        path = tmp_path / "poisson.mtx"
        write_matrix_market(problem.matrix, path)
        report = run_campaign([str(path)])
        assert report.entries[0].name == "poisson"
        assert report.entries[0].converged

    def test_mixed_sources(self, tmp_path):
        path = tmp_path / "grid.mtx"
        write_matrix_market(poisson_2d(8).matrix, path)
        report = run_campaign(["Wa", poisson_2d(10), str(path)])
        assert len(report.entries) == 3

    def test_unknown_source_rejected(self):
        with pytest.raises(DatasetError, match="cannot resolve"):
            run_campaign(["not-a-key"])


class TestAggregation:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(["Wa", "Fe", "If"])

    def test_solver_mix_counts_final_solver(self, report):
        mix = report.solver_mix
        assert sum(mix.values()) == 3
        assert mix.get("jacobi", 0) >= 1  # Fe converges via jacobi

    def test_statistics_in_range(self, report):
        assert report.convergence_rate == 1.0
        assert 0.0 < report.mean_underutilization < 1.0
        assert 0.0 < report.mean_throughput <= 1.0
        assert report.total_compute_ms > 0

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert any("convergence rate" in line for line in lines)
        assert any("100%" in line for line in lines)

    def test_csv_export(self, report, tmp_path):
        path = report.to_csv(tmp_path / "campaign.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 4
        assert rows[0][0] == "name"

    def test_config_forwarded(self):
        config = AcamarConfig(max_iterations=5)
        report = run_campaign([poisson_2d(16)], config=config)
        # Cap of 5 iterations: CG cannot converge; campaign records it.
        assert report.convergence_rate < 1.0

    def test_empty_campaign(self):
        report = run_campaign([])
        assert report.convergence_rate == 0.0
        assert report.solver_mix == {}
        assert report.mean_throughput == 0.0
