"""Tests for the campaign runner."""

import csv
import gzip
import shutil

import numpy as np
import pytest

from repro.campaign import (
    CampaignReport,
    failure_entry,
    problem_name_from_path,
    run_campaign,
)
from repro.config import AcamarConfig
from repro.datasets import poisson_2d
from repro.datasets.problem import Problem
from repro.errors import DatasetError
from repro.sparse.io import write_matrix_market


class TestSources:
    def test_dataset_keys(self):
        report = run_campaign(["Wa", "Li"])
        assert len(report.entries) == 2
        assert report.convergence_rate == 1.0

    def test_problem_instances(self):
        report = run_campaign([poisson_2d(10), poisson_2d(12)])
        assert [e.n for e in report.entries] == [100, 144]

    def test_mtx_files(self, tmp_path):
        problem = poisson_2d(8)
        path = tmp_path / "poisson.mtx"
        write_matrix_market(problem.matrix, path)
        report = run_campaign([str(path)])
        assert report.entries[0].name == "poisson"
        assert report.entries[0].converged

    def test_mixed_sources(self, tmp_path):
        path = tmp_path / "grid.mtx"
        write_matrix_market(poisson_2d(8).matrix, path)
        report = run_campaign(["Wa", poisson_2d(10), str(path)])
        assert len(report.entries) == 3

    def test_unknown_source_rejected(self):
        with pytest.raises(DatasetError, match="cannot resolve"):
            run_campaign(["not-a-key"])


class TestAggregation:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(["Wa", "Fe", "If"])

    def test_solver_mix_counts_final_solver(self, report):
        mix = report.solver_mix
        assert sum(mix.values()) == 3
        assert mix.get("jacobi", 0) >= 1  # Fe converges via jacobi

    def test_statistics_in_range(self, report):
        assert report.convergence_rate == 1.0
        assert 0.0 < report.mean_underutilization < 1.0
        assert 0.0 < report.mean_throughput <= 1.0
        assert report.total_compute_ms > 0

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert any("convergence rate" in line for line in lines)
        assert any("100%" in line for line in lines)

    def test_csv_export(self, report, tmp_path):
        path = report.to_csv(tmp_path / "campaign.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 4
        assert rows[0][0] == "name"

    def test_config_forwarded(self):
        config = AcamarConfig(max_iterations=5)
        report = run_campaign([poisson_2d(16)], config=config)
        # Cap of 5 iterations: CG cannot converge; campaign records it.
        assert report.convergence_rate < 1.0

    def test_empty_campaign(self):
        report = run_campaign([])
        assert report.convergence_rate == 0.0
        assert report.solver_mix == {}
        assert report.mean_throughput == 0.0

    def test_empty_campaign_summary_is_well_formed(self):
        report = run_campaign([])
        assert report.entries == []
        assert report.failures == []
        assert report.mean_underutilization == 0.0
        assert report.total_compute_ms == 0.0
        lines = report.summary_lines()
        assert any("systems solved        : 0" in line for line in lines)
        assert any("convergence rate      : 0%" in line for line in lines)


class TestResolveNames:
    """Regression: `.mtx.gz` sources must not keep a stray `.mtx` suffix."""

    def test_problem_name_from_path(self):
        assert problem_name_from_path("runs/wang3.mtx") == "wang3"
        assert problem_name_from_path("runs/wang3.mtx.gz") == "wang3"

    def test_gz_source_name_has_no_mtx_suffix(self, tmp_path):
        plain = tmp_path / "grid.mtx"
        write_matrix_market(poisson_2d(8).matrix, plain)
        gz_path = tmp_path / "grid.mtx.gz"
        with open(plain, "rb") as src, gzip.open(gz_path, "wb") as dst:
            shutil.copyfileobj(src, dst)
        report = run_campaign([str(gz_path)])
        assert report.entries[0].name == "grid"
        assert report.entries[0].converged


class TestFailurePaths:
    def test_unresolvable_source_names_the_source(self):
        with pytest.raises(DatasetError, match="'bogus-key'"):
            run_campaign(["Wa", "bogus-key"])

    def test_missing_mtx_path_raises_dataset_error(self):
        with pytest.raises(DatasetError, match="does-not-exist.mtx"):
            run_campaign(["does-not-exist.mtx"])

    def test_unresolvable_source_rejected_before_any_solve(self):
        # Eager validation: the bad source aborts the campaign up front,
        # even when it comes last.
        with pytest.raises(DatasetError):
            run_campaign([poisson_2d(8), "bogus-key"])

    def test_solve_crash_becomes_failure_entry(self):
        good = poisson_2d(8)
        bad = Problem(name="bad_rhs", matrix=good.matrix, b=np.ones(3))
        report = run_campaign([bad, good])
        assert len(report.entries) == 2
        first, second = report.entries
        assert first.failed and not first.converged
        assert first.name == "bad_rhs"
        assert first.failure  # "ExceptionType: message"
        assert second.converged and not second.failed
        assert report.failures == [first]
        assert any("failures" in line for line in report.summary_lines())

    def test_failure_entry_shape(self):
        entry = failure_entry("broken", "ValueError: nope")
        assert entry.failed
        assert entry.solver_sequence == ()
        assert entry.iterations == 0
        report = CampaignReport(entries=[entry])
        assert report.convergence_rate == 0.0
        assert report.solver_mix == {}

    def test_failure_recorded_in_csv(self, tmp_path):
        good = poisson_2d(8)
        bad = Problem(name="bad_rhs", matrix=good.matrix, b=np.ones(3))
        report = run_campaign([bad, good])
        path = report.to_csv(tmp_path / "campaign.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        header = rows[0]
        assert header[-1] == "failure"
        assert rows[1][-1] != ""
        assert rows[2][-1] == ""


class TestParallelCampaign:
    KEYS = ["Wa", "Li", "Fe", "If", "Qa", "Th"]

    @staticmethod
    def signature(report):
        return [
            (e.name, e.converged, e.iterations, e.solver_sequence)
            for e in report.entries
        ]

    def test_parallel_matches_serial(self):
        serial = run_campaign(self.KEYS)
        parallel = run_campaign(self.KEYS, workers=2)
        assert self.signature(serial) == self.signature(parallel)

    def test_parallel_engine_stats_in_telemetry(self):
        report = run_campaign(self.KEYS, workers=2)
        campaign = report.telemetry["campaign"]
        assert campaign["workers"] == 2
        assert campaign["problems"] == len(self.KEYS)
        assert campaign["chunks"] >= 1
        assert campaign["pool_restarts"] == 0

    def test_parallel_failure_isolation(self):
        good = poisson_2d(8)
        bad = Problem(name="bad_rhs", matrix=good.matrix, b=np.ones(3))
        report = run_campaign([bad, "Wa", good], workers=2)
        assert len(report.entries) == 3
        assert report.entries[0].failed
        assert report.entries[1].converged
        assert report.entries[2].converged

    def test_single_worker_stays_serial(self):
        report = run_campaign(["Wa"], workers=1)
        assert report.telemetry["campaign"]["workers"] == 1
        assert "chunks" not in report.telemetry["campaign"]

    def test_seed_derivation_is_per_position(self, tmp_path):
        path = tmp_path / "grid.mtx"
        write_matrix_market(poisson_2d(8).matrix, path)
        # Same file at two positions → same matrix, different manufactured
        # right-hand sides (seed + position), deterministically.
        once = run_campaign([str(path), str(path)], seed=7)
        again = run_campaign([str(path), str(path)], seed=7)
        assert self.signature(once) == self.signature(again)


class TestTelemetryReport:
    def test_schema_sections_present(self):
        report = run_campaign(["Wa"])
        document = report.telemetry
        assert document["schema_version"] == 1
        for section in (
            "campaign", "solver_attempts", "reconfigurations", "stages",
            "counters",
        ):
            assert section in document
        assert document["campaign"]["problems"] == 1
        assert document["campaign"]["converged"] == 1
        assert sum(document["solver_attempts"].values()) >= 1
        assert document["stages"]["campaign.solve"]["count"] == 1

    def test_write_telemetry_roundtrip(self, tmp_path):
        import json

        report = run_campaign(["Wa"])
        path = report.write_telemetry(tmp_path / "telemetry.json")
        assert json.loads(path.read_text()) == report.telemetry

    def test_write_telemetry_requires_aggregate(self):
        report = CampaignReport(entries=[])
        with pytest.raises(ValueError, match="no telemetry"):
            report.write_telemetry("unused.json")
