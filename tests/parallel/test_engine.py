"""Tests for the worker-pool campaign engine."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.config import AcamarConfig
from repro.datasets import poisson_2d
from repro.datasets.problem import Problem
from repro.parallel.engine import (
    WorkItem,
    estimate_cost,
    run_sharded,
    shard_by_cost,
    solve_items,
    source_label,
)


def make_items(sources, seed=1):
    return [
        WorkItem(index=i, source=s, seed=seed + i, cost=estimate_cost(s))
        for i, s in enumerate(sources)
    ]


def broken_problem(name="broken"):
    """A problem whose solve raises (RHS length disagrees with A)."""
    good = poisson_2d(8)
    return Problem(name=name, matrix=good.matrix, b=np.ones(3))


class TestEstimateCost:
    def test_problem_uses_exact_nnz(self):
        problem = poisson_2d(10)
        assert estimate_cost(problem) == float(problem.nnz)

    def test_key_uses_registry_dimension(self):
        from repro.datasets import dataset_spec

        assert estimate_cost("Wa") == float(dataset_spec("Wa").n)

    def test_mtx_path_uses_file_size(self, tmp_path):
        from repro.sparse.io import write_matrix_market

        path = tmp_path / "grid.mtx"
        write_matrix_market(poisson_2d(8).matrix, path)
        assert estimate_cost(str(path)) == float(path.stat().st_size)

    def test_missing_path_falls_back(self):
        assert estimate_cost("/nonexistent/m.mtx") == 1.0


class TestShardByCost:
    def test_balances_loads(self):
        items = [
            WorkItem(index=i, source=f"s{i}", seed=i, cost=cost)
            for i, cost in enumerate([100, 1, 1, 1, 99, 1, 1, 1])
        ]
        chunks = shard_by_cost(items, 2)
        loads = [sum(it.cost for it in chunk) for chunk in chunks]
        assert len(chunks) == 2
        assert abs(loads[0] - loads[1]) <= 2

    def test_preserves_index_order_within_chunk(self):
        items = make_items(["Wa", "Li", "Fe", "If"])
        for chunk in shard_by_cost(items, 2):
            indices = [it.index for it in chunk]
            assert indices == sorted(indices)

    def test_never_returns_empty_chunks(self):
        items = make_items(["Wa", "Li"])
        chunks = shard_by_cost(items, 8)
        assert len(chunks) == 2
        assert all(chunks)

    def test_all_items_exactly_once(self):
        items = make_items(["Wa", "Li", "Fe", "If", "Qa"])
        chunks = shard_by_cost(items, 3)
        flat = sorted(it.index for chunk in chunks for it in chunk)
        assert flat == [0, 1, 2, 3, 4]


class TestSolveItems:
    def test_solves_and_reports_telemetry(self):
        results = solve_items(make_items(["Wa"]), AcamarConfig())
        assert len(results) == 1
        assert results[0].error is None
        assert results[0].entry.converged
        assert results[0].telemetry["spans"]["campaign.solve"]["count"] == 1

    def test_fault_isolated_per_item(self):
        items = make_items([broken_problem(), poisson_2d(8)])
        results = solve_items(items, AcamarConfig())
        assert results[0].error is not None
        assert results[0].entry is None
        assert results[0].label == "broken"
        assert results[1].error is None
        assert results[1].entry.converged


class TestSourceLabel:
    def test_strips_both_mtx_suffixes(self):
        assert source_label("runs/mat.mtx") == "mat"
        assert source_label("runs/mat.mtx.gz") == "mat"

    def test_problem_and_key_labels(self):
        assert source_label(poisson_2d(8)) == "poisson_2d_8x8"
        assert source_label("Wa") == "Wa"


class _FlakyExecutor:
    """Completes chunks inline; breaks on chunks holding poisoned items."""

    def __init__(self, poison, budget):
        self.poison = poison
        self.budget = budget  # dict: remaining breaks

    def submit(self, fn, items, config):
        future = Future()
        hit = [str(it.source) for it in items if str(it.source) in self.poison]
        if hit and self.budget.get("remaining", 0) > 0:
            self.budget["remaining"] -= 1
            future.set_exception(BrokenProcessPool("worker died"))
        else:
            future.set_result(fn(items, config))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestRunSharded:
    def test_empty_items(self):
        outcome = run_sharded([], AcamarConfig(), workers=2)
        assert outcome.results == []

    def test_real_pool_matches_serial(self):
        items = make_items(["Wa", "Li", "Fe"])
        config = AcamarConfig()
        serial = solve_items(items, config)
        outcome = run_sharded(items, config, workers=2)
        assert [r.index for r in outcome.results] == [0, 1, 2]
        for ours, ref in zip(outcome.results, serial):
            assert ours.entry.name == ref.entry.name
            assert ours.entry.iterations == ref.entry.iterations
            assert ours.entry.solver_sequence == ref.entry.solver_sequence

    def test_worker_exception_isolated_in_real_pool(self):
        items = make_items([broken_problem(), poisson_2d(8)])
        outcome = run_sharded(items, AcamarConfig(), workers=2)
        assert outcome.results[0].error is not None
        assert outcome.results[1].entry.converged

    def test_transient_worker_loss_is_retried(self):
        items = make_items(["Wa", "Li", "Fe"])
        budget = {"remaining": 1}  # break once, then recover
        factory_calls = []

        def factory(n):
            factory_calls.append(n)
            return _FlakyExecutor({"Li"}, budget)

        outcome = run_sharded(
            items, AcamarConfig(), workers=2, executor_factory=factory
        )
        assert outcome.pool_restarts == 1
        assert len(factory_calls) == 2
        entries = {r.label: r for r in outcome.results}
        assert entries["light_in_tissue"].error is None
        assert all(r.entry is not None for r in outcome.results)

    def test_persistent_worker_loss_becomes_failure_record(self):
        items = make_items(["Wa", "Li", "Fe"])
        budget = {"remaining": 100}  # Li always kills its worker

        def factory(n):
            return _FlakyExecutor({"Li"}, budget)

        outcome = run_sharded(
            items, AcamarConfig(), workers=2, executor_factory=factory
        )
        assert len(outcome.results) == 3
        by_index = {r.index: r for r in outcome.results}
        assert by_index[1].error is not None
        assert "WorkerLost" in by_index[1].error
        assert outcome.abandoned_items == 1
        # The innocent chunk-mates still complete.
        assert by_index[0].entry is not None
        assert by_index[2].entry is not None

    def test_unstartable_pool_falls_back_in_process(self):
        def factory(n):
            raise OSError("no processes available")

        items = make_items(["Wa", "Li"])
        outcome = run_sharded(
            items, AcamarConfig(), workers=4, executor_factory=factory
        )
        assert outcome.in_process_items == 2
        assert all(r.entry is not None for r in outcome.results)

    def test_chunk_size_controls_chunk_count(self):
        items = make_items(["Wa", "Li", "Fe", "If"])
        chunks = []

        class Recorder:
            def submit(self, fn, chunk, config):
                chunks.append(chunk)
                future = Future()
                future.set_result(fn(chunk, config))
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        def factory(n):
            return Recorder()

        run_sharded(
            items,
            AcamarConfig(),
            workers=2,
            chunk_size=2,
            executor_factory=factory,
        )
        assert len(chunks) == 2
        assert all(len(chunk) == 2 for chunk in chunks)

    def test_deterministic_across_runs(self):
        items = make_items(["Wa", "Li"])
        first = run_sharded(items, AcamarConfig(), workers=2)
        second = run_sharded(items, AcamarConfig(), workers=2)
        for a, b in zip(first.results, second.results):
            assert a.entry.iterations == b.entry.iterations
            assert a.entry.solver_sequence == b.entry.solver_sequence


class TestAllErrorReassembly:
    def test_every_item_failing_still_reassembles_in_order(self):
        items = make_items(
            [broken_problem("b0"), broken_problem("b1"), broken_problem("b2")]
        )
        outcome = run_sharded(items, AcamarConfig(), workers=2)
        assert [r.index for r in outcome.results] == [0, 1, 2]
        assert all(r.entry is None for r in outcome.results)
        assert all(r.error is not None for r in outcome.results)
        assert [r.label for r in outcome.results] == ["b0", "b1", "b2"]
        assert outcome.abandoned_items == 0


def echo_items(chunk, config):
    """Module-level work_fn stand-in: pool workers must be able to pickle
    it, exactly like the real ``solve_items``/``profile_items``."""
    from repro.parallel.engine import ItemResult

    return [
        ItemResult(
            index=it.index,
            entry=f"echo:{it.source}",
            error=None,
            label=str(it.source),
            telemetry={},
        )
        for it in chunk
    ]


class TestCustomWorkFn:
    def test_work_fn_replaces_solve_items(self):
        items = make_items(["Wa", "Li", "Fe"])
        outcome = run_sharded(
            items, AcamarConfig(), workers=2, work_fn=echo_items
        )
        assert [r.entry for r in outcome.results] == [
            "echo:Wa", "echo:Li", "echo:Fe",
        ]

    def test_work_fn_used_on_in_process_fallback(self):
        def factory(n):
            raise OSError("no processes available")

        outcome = run_sharded(
            make_items(["Wa", "Li"]),
            AcamarConfig(),
            workers=4,
            executor_factory=factory,
            work_fn=echo_items,
        )
        assert outcome.in_process_items == 2
        assert all(r.entry.startswith("echo:") for r in outcome.results)


class TestDefaultWorkerCount:
    def test_defaults_to_cpu_count(self, monkeypatch):
        import os

        from repro.parallel.engine import WORKER_COUNT_ENV, default_worker_count

        monkeypatch.delenv(WORKER_COUNT_ENV, raising=False)
        assert default_worker_count() == max(1, os.cpu_count() or 1)

    def test_env_override_honored(self, monkeypatch):
        from repro.parallel.engine import WORKER_COUNT_ENV, default_worker_count

        monkeypatch.setenv(WORKER_COUNT_ENV, " 3 ")
        assert default_worker_count() == 3

    def test_invalid_override_rejected(self, monkeypatch):
        import pytest

        from repro.errors import ConfigurationError
        from repro.parallel.engine import WORKER_COUNT_ENV, default_worker_count

        for bad in ("0", "-2", "many", ""):
            monkeypatch.setenv(WORKER_COUNT_ENV, bad)
            with pytest.raises(ConfigurationError, match=WORKER_COUNT_ENV):
                default_worker_count()


class TestWorkerLostAccounting:
    """WorkerLost records must count failures exactly like solve faults."""

    def test_lost_worker_counters_match_fault_path(self):
        items = make_items(["Wa", "Li", "Fe"])
        budget = {"remaining": 100}  # Li always kills its worker

        def factory(n):
            return _FlakyExecutor({"Li"}, budget)

        outcome = run_sharded(
            items, AcamarConfig(), workers=2, executor_factory=factory
        )
        lost = [r for r in outcome.results if r.error is not None]
        assert len(lost) == 1
        # The per-item record carries the same failure increment the
        # in-worker fault-isolation path would have recorded.
        counters = lost[0].telemetry["counters"]
        assert counters["campaign.failures"] == 1
        assert counters["campaign.workers_lost"] == 1
        # And the aggregate agrees with the result records.
        merged = outcome.telemetry.counters
        assert merged["campaign.failures"] == len(lost)
        assert merged["campaign.workers_lost"] == len(lost)

    def test_mixed_fault_paths_agree_in_aggregate(self):
        items = make_items([broken_problem(), "Wa", "Li"])
        budget = {"remaining": 100}  # Li kills workers; index 0 raises

        def factory(n):
            return _FlakyExecutor({"Li"}, budget)

        outcome = run_sharded(
            items, AcamarConfig(), workers=2, executor_factory=factory
        )
        errored = [r for r in outcome.results if r.error is not None]
        assert outcome.telemetry.counters["campaign.failures"] == len(errored)


class TestRestartExhaustionMidCampaign:
    """Exhausting max_pool_restarts must still return a full outcome."""

    def test_exhausted_restarts_surface_worker_lost_in_order(self):
        items = make_items(["Wa", "Li", "Fe", "If"])
        budget = {"remaining": 100}

        def factory(n):
            return _FlakyExecutor({"Li"}, budget)

        outcome = run_sharded(
            items,
            AcamarConfig(),
            workers=2,
            chunk_size=2,
            max_pool_restarts=0,
            executor_factory=factory,
        )
        # Complete and ordered: every item has exactly one result.
        assert [r.index for r in outcome.results] == [0, 1, 2, 3]
        suspects = [
            r.index for r in outcome.results
            if r.error is not None and "WorkerLost" in r.error
        ]
        # Li's chunk-mates are crash suspects; they must be reported as
        # WorkerLost, never retried inside the parent process.
        assert 1 in suspects
        assert outcome.in_process_items == 0
        assert outcome.abandoned_items == len(suspects)
        # Chunks that survived the broken pool keep their real entries.
        completed = [r for r in outcome.results if r.entry is not None]
        assert len(completed) == len(items) - len(suspects)
        for result in completed:
            assert result.error is None

    def test_every_chunk_crashing_never_falls_back_in_process(self):
        items = make_items(["Wa", "Li", "Fe"])
        budget = {"remaining": 100}

        def factory(n):
            return _FlakyExecutor({"Wa", "Li", "Fe"}, budget)

        outcome = run_sharded(
            items,
            AcamarConfig(),
            workers=2,
            max_pool_restarts=1,
            executor_factory=factory,
        )
        assert [r.index for r in outcome.results] == [0, 1, 2]
        assert all(
            r.error is not None and "WorkerLost" in r.error
            for r in outcome.results
        )
        assert outcome.in_process_items == 0
        assert outcome.abandoned_items == 3
