"""Tests for structure fingerprints and the bounded plan cache."""

import numpy as np
import pytest

from repro import Acamar
from repro.datasets import poisson_2d
from repro.errors import ConfigurationError
from repro.serve.cache import (
    CacheEntry,
    PlanCache,
    plan_signature,
    structure_fingerprint,
)
from repro.sparse.csr import CSRMatrix


def entry(fp, signature="sig"):
    return CacheEntry(
        fingerprint=fp,
        plan_signature=signature,
        solver_sequence=("cg",),
        converged=True,
        iterations=10,
        attempt_compute_s=(1e-4, 2e-4),
        analysis_s=1e-5,
    )


class TestStructureFingerprint:
    def test_pattern_determines_fingerprint(self):
        matrix = poisson_2d(10).matrix
        shifted = CSRMatrix(
            matrix.shape,
            matrix.indptr.copy(),
            matrix.indices.copy(),
            matrix.data * 3.0,  # same pattern, different values
        )
        assert structure_fingerprint(matrix) == structure_fingerprint(shifted)

    def test_different_patterns_differ(self):
        assert structure_fingerprint(
            poisson_2d(10).matrix
        ) != structure_fingerprint(poisson_2d(11).matrix)

    def test_stable_across_index_dtypes(self):
        matrix = poisson_2d(8).matrix
        widened = CSRMatrix(
            matrix.shape,
            matrix.indptr.astype(np.int32),
            matrix.indices.astype(np.int32),
            matrix.data,
        )
        assert structure_fingerprint(matrix) == structure_fingerprint(widened)


class TestPlanSignature:
    def test_equal_plans_share_signature(self):
        matrix = poisson_2d(10).matrix
        a = Acamar().plan(matrix)
        b = Acamar().plan(matrix)
        assert plan_signature(a) == plan_signature(b)

    def test_different_structures_differ(self):
        a = Acamar().plan(poisson_2d(10).matrix)
        b = Acamar().plan(poisson_2d(24).matrix)
        assert plan_signature(a) != plan_signature(b)


class TestPlanCache:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            PlanCache(capacity=0)

    def test_get_records_hits_and_misses(self):
        cache = PlanCache(capacity=4)
        assert cache.get("absent") is None
        cache.put(entry("a"))
        assert cache.get("a").fingerprint == "a"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_peek_does_not_touch_stats_or_order(self):
        cache = PlanCache(capacity=2)
        cache.put(entry("a"))
        cache.put(entry("b"))
        assert cache.peek("a") is not None
        assert cache.stats.hits == 0
        cache.put(entry("c"))  # peek must not have refreshed "a"
        assert cache.peek("a") is None
        assert cache.peek("b") is not None

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(entry("a"))
        cache.put(entry("b"))
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put(entry("c"))
        assert cache.peek("b") is None
        assert cache.peek("a") is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_put_existing_updates_in_place(self):
        cache = PlanCache(capacity=2)
        cache.put(entry("a", signature="old"))
        cache.put(entry("a", signature="new"))
        assert len(cache) == 1
        assert cache.peek("a").plan_signature == "new"

    def test_final_compute_is_last_attempt(self):
        assert entry("a").final_compute_s == pytest.approx(2e-4)
