"""Tests for the serving request/response contract."""

import pytest

from repro.serve.api import (
    Outcome,
    Priority,
    SolveRequest,
    SolveResponse,
    parse_priority,
)


class TestPriority:
    def test_ordering_interactive_most_urgent(self):
        assert Priority.INTERACTIVE < Priority.BATCH < Priority.BEST_EFFORT

    def test_parse_from_string_and_int(self):
        assert parse_priority("interactive") is Priority.INTERACTIVE
        assert parse_priority(" BATCH ") is Priority.BATCH
        assert parse_priority(2) is Priority.BEST_EFFORT
        assert parse_priority(Priority.BATCH) is Priority.BATCH

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown priority"):
            parse_priority("urgent")


class TestSolveRequest:
    def test_round_trips_through_dict(self):
        request = SolveRequest(
            request_id=7,
            source="Wa",
            arrival_s=0.125,
            priority=Priority.INTERACTIVE,
            deadline_s=0.225,
            tenant="team-a",
        )
        again = SolveRequest.from_dict(request.as_dict())
        assert again == request

    def test_no_deadline_round_trips_as_none(self):
        request = SolveRequest(request_id=0, source="Li", arrival_s=0.0)
        payload = request.as_dict()
        assert payload["deadline_s"] is None
        assert SolveRequest.from_dict(payload).deadline_s is None


class TestSolveResponse:
    def test_latency_is_finish_minus_arrival(self):
        response = SolveResponse(
            request_id=1,
            source="Wa",
            outcome=Outcome.COMPLETED,
            priority=Priority.BATCH,
            arrival_s=1.0,
            finish_s=1.25,
        )
        assert response.latency_s == pytest.approx(0.25)

    def test_as_dict_is_json_stable(self):
        response = SolveResponse(
            request_id=1,
            source="Wa",
            outcome=Outcome.SHED,
            priority=Priority.BEST_EFFORT,
            arrival_s=0.5,
            finish_s=0.5,
            detail="queue_full",
        )
        payload = response.as_dict()
        assert payload["outcome"] == "shed"
        assert payload["priority"] == "best_effort"
        assert payload["latency_s"] == 0.0
        assert payload["detail"] == "queue_full"
