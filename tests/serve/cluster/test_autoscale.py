"""Autoscaler hysteresis: streaks, cooldown, floors/ceilings, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.cluster.autoscale import (
    Autoscaler,
    AutoscalerPolicy,
    IntervalSignals,
    ScaleAction,
)

POLICY = AutoscalerPolicy(
    queue_high=64.0,
    shed_rate_high=0.01,
    queue_low=1.0,
    busy_low=0.35,
    up_intervals=2,
    down_intervals=3,
    cooldown_intervals=2,
)


def hot(at_s):
    return IntervalSignals(
        at_s=at_s, queue_depth_p90=200.0, shed_rate=0.0,
        busy_fraction=1.0, local_hit_rate=1.0,
    )


def cold(at_s):
    return IntervalSignals(
        at_s=at_s, queue_depth_p90=0.0, shed_rate=0.0,
        busy_fraction=0.1, local_hit_rate=1.0,
    )


def neutral(at_s):
    return IntervalSignals(
        at_s=at_s, queue_depth_p90=10.0, shed_rate=0.0,
        busy_fraction=0.8, local_hit_rate=1.0,
    )


def drive(scaler, signals, alive=4, lo=1, hi=8):
    return [
        scaler.evaluate(s, alive=alive, min_fleets=lo, max_fleets=hi).action
        for s in signals
    ]


class TestPolicyValidation:
    def test_streak_windows_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(up_intervals=0)

    def test_cooldown_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(cooldown_intervals=-1)


class TestHysteresis:
    def test_single_hot_epoch_does_not_scale(self):
        actions = drive(Autoscaler(POLICY), [hot(0.0), neutral(1.0)])
        assert actions == [ScaleAction.HOLD, ScaleAction.HOLD]

    def test_streak_of_up_intervals_fires_add(self):
        actions = drive(Autoscaler(POLICY), [hot(0.0), hot(1.0)])
        assert actions == [ScaleAction.HOLD, ScaleAction.ADD]

    def test_neutral_epoch_resets_hot_streak(self):
        actions = drive(
            Autoscaler(POLICY), [hot(0.0), neutral(1.0), hot(2.0), hot(3.0)]
        )
        assert actions == [
            ScaleAction.HOLD, ScaleAction.HOLD,
            ScaleAction.HOLD, ScaleAction.ADD,
        ]

    def test_drain_needs_down_intervals(self):
        actions = drive(
            Autoscaler(POLICY), [cold(float(i)) for i in range(3)]
        )
        assert actions == [
            ScaleAction.HOLD, ScaleAction.HOLD, ScaleAction.DRAIN,
        ]

    def test_cooldown_blocks_consecutive_actions(self):
        # ADD at epoch 1 opens a 2-epoch cooldown: epochs 2-3 HOLD with
        # the cooldown reason even under sustained pressure.  The streak
        # rebuilds from zero during the cooldown, so the next ADD lands
        # exactly cooldown + 1 epochs after the first.
        scaler = Autoscaler(POLICY)
        signals = [hot(float(i)) for i in range(6)]
        actions = drive(scaler, signals)
        assert actions == [
            ScaleAction.HOLD, ScaleAction.ADD,
            ScaleAction.HOLD, ScaleAction.HOLD,
            ScaleAction.ADD, ScaleAction.HOLD,
        ]
        assert [d.reason for d in scaler.decisions[2:4]] == [
            "cooldown", "cooldown",
        ]

    def test_non_hold_decisions_spaced_by_cooldown(self):
        scaler = Autoscaler(POLICY)
        drive(scaler, [hot(float(i)) for i in range(20)])
        fired = [
            i for i, d in enumerate(scaler.decisions)
            if d.action is not ScaleAction.HOLD
        ]
        assert fired
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(g >= POLICY.cooldown_intervals + 1 for g in gaps)


class TestBounds:
    def test_add_respects_max_fleets(self):
        scaler = Autoscaler(POLICY)
        actions = drive(scaler, [hot(0.0), hot(1.0)], alive=8, hi=8)
        assert actions == [ScaleAction.HOLD, ScaleAction.HOLD]
        assert scaler.decisions[-1].reason == "hot but at max_fleets"

    def test_drain_respects_min_fleets(self):
        scaler = Autoscaler(POLICY)
        actions = drive(
            scaler, [cold(float(i)) for i in range(3)], alive=1, lo=1
        )
        assert actions[-1] is ScaleAction.HOLD
        assert scaler.decisions[-1].reason == "cold but at min_fleets"


class TestDeterminism:
    def test_identical_signal_traces_identical_decisions(self):
        signals = (
            [hot(float(i)) for i in range(4)]
            + [neutral(float(i)) for i in range(4, 8)]
            + [cold(float(i)) for i in range(8, 16)]
        )
        a, b = Autoscaler(POLICY), Autoscaler(POLICY)
        drive(a, signals)
        drive(b, signals)
        assert [d.as_dict() for d in a.decisions] == [
            d.as_dict() for d in b.decisions
        ]

    def test_pinned_decision_sequence(self):
        scaler = Autoscaler(POLICY)
        signals = (
            [hot(float(i)) for i in range(5)]
            + [cold(float(i)) for i in range(5, 13)]
        )
        drive(scaler, signals)
        assert [d.action.value for d in scaler.decisions] == [
            "hold", "add", "hold", "hold", "add",
            "hold", "hold", "drain", "hold", "hold", "drain", "hold", "hold",
        ]
