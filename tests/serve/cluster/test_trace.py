"""Array-native trace generation: shape, determinism, statistical model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.api import Priority
from repro.serve.cluster.trace import (
    NO_DEADLINE,
    ClusterLoadSpec,
    generate_trace,
)

SOURCES = ("poisson2d_64", "heat1d_256", "adv_diff_128")


def spec(**kw):
    base = dict(
        seed=11, duration_s=30.0, rate_rps=400.0, sources=SOURCES
    )
    base.update(kw)
    return ClusterLoadSpec(**base)


class TestValidation:
    def test_rejects_non_positive_duration(self):
        with pytest.raises(ConfigurationError):
            ClusterLoadSpec(duration_s=0.0)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            ClusterLoadSpec(rate_rps=-1.0)

    def test_rejects_unknown_mix(self):
        with pytest.raises(ConfigurationError):
            ClusterLoadSpec(mix="nope")


class TestShape:
    def test_arrays_aligned_and_sorted(self):
        trace = generate_trace(spec())
        n = len(trace)
        assert trace.arrival_s.shape == (n,)
        assert trace.source_idx.shape == (n,)
        assert trace.priority.shape == (n,)
        assert trace.deadline_s.shape == (n,)
        assert np.all(np.diff(trace.arrival_s) >= 0)
        assert trace.arrival_s[0] >= 0.0
        assert trace.arrival_s[-1] < 30.0

    def test_dtypes_are_compact(self):
        trace = generate_trace(spec())
        assert trace.source_idx.dtype == np.int16
        assert trace.priority.dtype == np.int8

    def test_request_count_tracks_rate(self):
        trace = generate_trace(spec())
        expected = 400.0 * 30.0
        assert 0.8 * expected < len(trace) < 1.2 * expected

    def test_only_interactive_requests_carry_deadlines(self):
        trace = generate_trace(spec())
        interactive = trace.priority == Priority.INTERACTIVE.value
        assert np.all(np.isfinite(trace.deadline_s[interactive]))
        assert np.all(trace.deadline_s[~interactive] == NO_DEADLINE)
        assert np.all(
            trace.deadline_s[interactive] > trace.arrival_s[interactive]
        )


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = generate_trace(spec())
        b = generate_trace(spec())
        assert np.array_equal(a.arrival_s, b.arrival_s)
        assert np.array_equal(a.source_idx, b.source_idx)
        assert np.array_equal(a.priority, b.priority)
        assert np.array_equal(a.deadline_s, b.deadline_s)

    def test_different_seeds_differ(self):
        a = generate_trace(spec())
        b = generate_trace(spec(seed=12))
        assert not np.array_equal(a.arrival_s, b.arrival_s)

    def test_timestamps_rounded_to_nanoseconds(self):
        trace = generate_trace(spec())
        assert np.array_equal(trace.arrival_s, np.round(trace.arrival_s, 9))


class TestStatisticalModel:
    def test_every_source_appears(self):
        trace = generate_trace(spec())
        counts = trace.source_counts()
        assert set(counts) == set(SOURCES)
        assert all(v > 0 for v in counts.values())

    def test_priority_shares_roughly_hold(self):
        trace = generate_trace(spec(duration_s=60.0, rate_rps=800.0))
        counts = trace.priority_counts()
        total = sum(counts.values())
        # PRIORITY_SHARES pins interactive at 30%: allow wide slack,
        # the point is the class split is driven by the shared table.
        assert 0.2 < counts["interactive"] / total < 0.4

    def test_bursty_mix_clusters_arrivals(self):
        trace = generate_trace(spec(mix="bursty"))
        phase = trace.arrival_s % 1.0  # burst_period_s default
        in_burst = np.mean(phase < 0.25)  # burst_s default
        # Uniform traffic would put 25% of arrivals in the burst window;
        # a 4x burst factor concentrates more than half there.
        assert in_burst > 0.5
