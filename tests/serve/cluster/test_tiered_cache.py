"""Tiered plan cache: the local/remote/miss cost ladder."""

from repro.serve.cache import CacheEntry
from repro.serve.cluster.cache import (
    LOCAL_HIT,
    MISS,
    REMOTE_HIT,
    TieredPlanCache,
    TierStats,
)


def entry(fp):
    return CacheEntry(
        fingerprint=fp,
        plan_signature=f"sig:{fp}",
        solver_sequence=("cg",),
        converged=True,
        iterations=10,
        attempt_compute_s=(1e-4,),
        analysis_s=1e-5,
    )


class TestCostLadder:
    def test_miss_then_publish_then_local_hit(self):
        cache = TieredPlanCache(local_capacity=4, remote_fetch_s=250e-6)
        tier, found, charge = cache.lookup(1, "fp-a")
        assert (tier, found, charge) == (MISS, None, 0.0)
        cache.publish(1, entry("fp-a"))
        tier, found, charge = cache.lookup(1, "fp-a")
        assert tier == LOCAL_HIT
        assert found.fingerprint == "fp-a"
        assert charge == 0.0

    def test_remote_hit_charges_fetch_and_installs_locally(self):
        cache = TieredPlanCache(local_capacity=4, remote_fetch_s=250e-6)
        cache.publish(1, entry("fp-a"))
        # Fleet 2 never saw fp-a: directory hit, one fetch charge...
        tier, found, charge = cache.lookup(2, "fp-a")
        assert (tier, charge) == (REMOTE_HIT, 250e-6)
        assert found.fingerprint == "fp-a"
        # ...and the install makes the next lookup free.
        tier, _, charge = cache.lookup(2, "fp-a")
        assert (tier, charge) == (LOCAL_HIT, 0.0)

    def test_local_eviction_degrades_to_remote_not_miss(self):
        cache = TieredPlanCache(local_capacity=1, remote_fetch_s=1e-3)
        cache.publish(1, entry("fp-a"))
        cache.publish(1, entry("fp-b"))  # capacity 1: evicts fp-a locally
        assert cache.local_entries(1) == 1
        tier, found, charge = cache.lookup(1, "fp-a")
        assert (tier, charge) == (REMOTE_HIT, 1e-3)
        assert found.fingerprint == "fp-a"

    def test_publish_is_idempotent_in_the_directory(self):
        cache = TieredPlanCache(local_capacity=4)
        cache.publish(1, entry("fp-a"))
        cache.publish(2, entry("fp-a"))
        assert cache.publishes == 1
        assert len(cache.directory) == 1


class TestFleetLifecycle:
    def test_lookup_auto_attaches_unknown_fleet(self):
        cache = TieredPlanCache(local_capacity=4)
        assert cache.lookup(7, "fp-x")[0] == MISS
        cache.publish(7, entry("fp-x"))
        assert cache.lookup(7, "fp-x")[0] == LOCAL_HIT

    def test_detach_drops_local_tier_but_keeps_directory(self):
        cache = TieredPlanCache(local_capacity=4)
        cache.publish(3, entry("fp-a"))
        cache.detach_fleet(3)
        assert cache.local_entries(3) == 0
        # A rejoin re-pays one fetch, never a re-analysis.
        tier, _, _ = cache.lookup(3, "fp-a")
        assert tier == REMOTE_HIT

    def test_misses_equal_publishes_equal_directory(self):
        # The cluster invariant: each unique fingerprint misses exactly
        # once cluster-wide, whatever fleet sees it first.
        cache = TieredPlanCache(local_capacity=8)
        for fleet_id, fp in [(1, "a"), (2, "b"), (1, "c"), (2, "a")]:
            tier, found, _ = cache.lookup(fleet_id, fp)
            if tier == MISS:
                cache.publish(fleet_id, entry(fp))
        assert cache.stats.misses == cache.publishes == len(cache.directory)


class TestStats:
    def test_ladder_counts(self):
        cache = TieredPlanCache(local_capacity=4)
        cache.lookup(1, "fp-a")            # miss
        cache.publish(1, entry("fp-a"))
        cache.lookup(1, "fp-a")            # local
        cache.lookup(2, "fp-a")            # remote
        stats = cache.stats
        assert (stats.local_hits, stats.remote_hits, stats.misses) == (
            1, 1, 1
        )
        assert stats.lookups == 3
        assert stats.local_hit_rate == 1 / 3

    def test_merge(self):
        a = TierStats(local_hits=2, remote_hits=1, misses=1)
        a.merge(TierStats(local_hits=1, remote_hits=0, misses=3))
        assert (a.local_hits, a.remote_hits, a.misses) == (3, 1, 4)

    def test_empty_rate_is_zero(self):
        assert TierStats().local_hit_rate == 0.0
