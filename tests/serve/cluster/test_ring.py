"""Consistent-hash ring: stability, bounded remap, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.cluster.ring import DEFAULT_VNODES, HashRing


def keys(n):
    return [f"fingerprint:{i:05d}" for i in range(n)]


def build(members, vnodes=DEFAULT_VNODES):
    ring = HashRing(vnodes=vnodes)
    for fleet_id in members:
        ring.add(fleet_id)
    return ring


class TestMembership:
    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(ConfigurationError):
            HashRing().owner("k")

    def test_vnodes_validated(self):
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)

    def test_add_is_idempotent(self):
        ring = build([1, 2])
        before = ring.placement(keys(50))
        ring.add(1)
        assert len(ring) == 2
        assert ring.placement(keys(50)) == before

    def test_remove_unknown_is_a_no_op(self):
        ring = build([1, 2])
        ring.remove(99)
        assert ring.members == (1, 2)

    def test_members_sorted(self):
        assert build([5, 1, 3]).members == (1, 3, 5)


class TestPlacement:
    def test_placement_is_deterministic(self):
        a = build([0, 1, 2]).placement(keys(200))
        b = build([0, 1, 2]).placement(keys(200))
        assert a == b

    def test_placement_independent_of_join_order(self):
        a = build([0, 1, 2]).placement(keys(200))
        b = build([2, 0, 1]).placement(keys(200))
        assert a == b

    def test_every_member_owns_some_keys(self):
        ring = build([0, 1, 2, 3])
        owners = set(ring.placement(keys(2000)).values())
        assert owners == {0, 1, 2, 3}

    def test_pinned_placement(self):
        # Byte-stability across machines and Python versions: the SHA-256
        # construction admits no process salt, so these concrete routes
        # can be pinned as a regression anchor.
        ring = build([0, 1, 2])
        assert [ring.owner(k) for k in keys(8)] == [2, 2, 2, 1, 0, 1, 1, 2]


class TestBoundedRemap:
    def test_join_remaps_about_one_over_n(self):
        population = keys(4000)
        ring = build([0, 1, 2, 3])
        before = ring.placement(population)
        ring.add(4)
        after = ring.placement(population)
        moved = sum(1 for k in population if before[k] != after[k])
        # Expectation is K/N = 800 of 4000 keys; the vnode spread keeps
        # the realized count well inside [K/2N, 2K/N].  Exact value is
        # pinned so any hashing change is loud.
        assert 400 <= moved <= 1600
        assert moved == 949

    def test_join_only_pulls_keys_it_now_owns(self):
        population = keys(1000)
        ring = build([0, 1, 2])
        before = ring.placement(population)
        ring.add(3)
        after = ring.placement(population)
        for key in population:
            if before[key] != after[key]:
                assert after[key] == 3

    def test_leave_scatters_only_the_leavers_keys(self):
        population = keys(1000)
        ring = build([0, 1, 2, 3])
        before = ring.placement(population)
        ring.remove(2)
        after = ring.placement(population)
        for key in population:
            if before[key] == 2:
                assert after[key] != 2
            else:
                assert after[key] == before[key]

    def test_leave_then_rejoin_restores_placement(self):
        population = keys(500)
        ring = build([0, 1, 2])
        before = ring.placement(population)
        ring.remove(1)
        ring.add(1)
        assert ring.placement(population) == before
