"""End-to-end cluster simulator tests: determinism, accounting, chaos seams."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.cluster import (
    ClusterConfig,
    ClusterLoadSpec,
    FleetFaultEvent,
    ForcedScaleEvent,
    run_cluster_loadtest,
)

SOURCES = ("Wa", "Li", "2C")


def small_spec(**overrides):
    base = dict(
        seed=2, duration_s=6.0, rate_rps=300.0, mix="bursty",
        sources=SOURCES,
    )
    base.update(overrides)
    return ClusterLoadSpec(**base)


def small_config(**overrides):
    base = dict(
        initial_fleets=2, min_fleets=1, max_fleets=4, slots_per_fleet=2,
        max_batch=8, queue_capacity=256, cache_capacity=8,
    )
    base.update(overrides)
    return ClusterConfig(**base)


class TestValidation:
    def test_fleet_bounds_ordering(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(min_fleets=4, initial_fleets=2, max_fleets=8)

    def test_min_fleets_floor(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(min_fleets=0)

    def test_fill_window_must_fit_in_epoch(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(batch_fill_ms=1500.0, interval_s=1.0)

    def test_forced_scale_action_validated(self):
        with pytest.raises(ConfigurationError):
            ForcedScaleEvent(at_s=1.0, action="explode")


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        a = run_cluster_loadtest(small_spec(), small_config())
        b = run_cluster_loadtest(small_spec(), small_config())
        assert a.to_json() == b.to_json()

    def test_worker_count_never_changes_the_report(self):
        # Profile building may fan out; the served results must not
        # depend on the worker count in any byte.
        a = run_cluster_loadtest(small_spec(), small_config(workers=1))
        b = run_cluster_loadtest(small_spec(), small_config(workers=4))
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = run_cluster_loadtest(small_spec(), small_config())
        b = run_cluster_loadtest(small_spec(seed=3), small_config())
        assert a.to_json() != b.to_json()


class TestAccounting:
    def test_every_request_accounted(self):
        report = run_cluster_loadtest(small_spec(), small_config())
        doc = report.as_dict()
        requests = doc["requests"]
        assert requests["unaccounted"] == 0
        assert requests["generated"] == (
            requests["completed"]
            + requests["failed"]
            + requests["shed_overflow"]
            + requests["shed_drain_limit"]
            + requests["expired"]
        )
        assert requests["generated"] > 0

    def test_accounting_holds_under_pressure(self):
        report = run_cluster_loadtest(
            small_spec(rate_rps=2000.0),
            small_config(queue_capacity=64, max_fleets=2),
        )
        doc = report.as_dict()
        assert doc["requests"]["unaccounted"] == 0
        assert doc["requests"]["shed_overflow"] > 0

    def test_cache_invariant_misses_publishes_directory(self):
        doc = run_cluster_loadtest(small_spec(), small_config()).as_dict()
        cache = doc["cache"]
        assert (
            cache["lookups"]["misses"]
            == cache["publishes"]
            == cache["directory_entries"]
        )

    def test_latency_populations_sum_to_completed(self):
        doc = run_cluster_loadtest(small_spec(), small_config()).as_dict()
        latency = doc["latency_ms"]
        assert latency["overall"]["count"] == doc["requests"]["completed"]
        assert sum(
            section["count"] for section in latency["by_priority"].values()
        ) == latency["overall"]["count"]

    def test_latencies_match_per_batch_reference(self):
        # Regression for the scatter/cumsum finalize: it must agree
        # elementwise with the naive per-batch expansion.
        from repro.config import AcamarConfig
        from repro.serve.cluster.service import _ClusterSimulation
        from repro.serve.cluster.trace import generate_trace
        from repro.serve.service import build_profiles
        from repro.telemetry import Telemetry

        spec = small_spec()
        trace = generate_trace(spec)
        collector = Telemetry()
        with collector.activate():
            profiles = build_profiles(
                list(trace.sources), AcamarConfig(), workers=1, seed=1,
                collector=collector,
            )
            sim = _ClusterSimulation(trace, small_config(), profiles)
            sim.run(spec.duration_s)
        c = sim.lat_count
        arrivals = sim.lat_arrival[:c].copy()  # consumed as scratch below
        got = sim.latencies_s()
        sizes = np.asarray(sim.batch_size, dtype=np.int64)
        starts = np.cumsum(sizes) - sizes
        first = np.repeat(np.asarray(sim.batch_first), sizes)
        step = np.repeat(np.asarray(sim.batch_step), sizes)
        position = np.arange(c, dtype=np.float64) - np.repeat(
            starts.astype(np.float64), sizes
        )
        reference = (first - arrivals) + step * position
        assert np.abs(got - reference).max() < 1e-9
        assert np.all(got > 0.0)


class TestRoutingAffinity:
    def test_affinity_beats_random_spread_on_config_loads(self):
        warm = run_cluster_loadtest(
            small_spec(mix="repeat-heavy"), small_config()
        ).as_dict()
        cold = run_cluster_loadtest(
            small_spec(mix="repeat-heavy"),
            small_config(affinity_routing=False),
        ).as_dict()
        assert warm["routing"]["affinity"] is True
        assert cold["routing"]["affinity"] is False
        # Spraying fingerprints across fleets multiplies remote
        # installs; affinity keeps each structure's plan resident.
        assert (
            warm["cache"]["lookups"]["remote_hits"]
            <= cold["cache"]["lookups"]["remote_hits"]
        )
        assert (
            warm["cache"]["lookups"]["local_hit_rate"]
            >= cold["cache"]["lookups"]["local_hit_rate"]
        )

    def test_all_routed_requests_counted(self):
        doc = run_cluster_loadtest(small_spec(), small_config()).as_dict()
        assert doc["routing"]["routed"] > 0
        assert doc["routing"]["ring_rebuilds"] >= 1  # initial joins


class TestAutoscaling:
    def test_pressure_scales_the_cluster_up(self):
        doc = run_cluster_loadtest(
            small_spec(duration_s=12.0, rate_rps=1500.0),
            small_config(initial_fleets=1, max_fleets=4),
        ).as_dict()
        assert doc["autoscaler"]["enabled"] is True
        assert doc["autoscaler"]["scale_ups"] >= 1
        assert doc["fleets"]["peak"] > 1

    def test_autoscale_off_keeps_membership_fixed(self):
        doc = run_cluster_loadtest(
            small_spec(rate_rps=1500.0),
            small_config(autoscale=False),
        ).as_dict()
        assert doc["autoscaler"]["enabled"] is False
        assert doc["autoscaler"]["evaluations"] == 0
        assert doc["fleets"]["peak"] == 2
        assert doc["fleets"]["final"] == 2

    def test_decisions_respect_cooldown_spacing(self):
        report = run_cluster_loadtest(
            small_spec(duration_s=20.0, rate_rps=1200.0),
            small_config(initial_fleets=1),
        )
        from repro.serve.cluster import ScaleAction

        decisions = report.autoscaler.decisions
        fired = [
            i for i, d in enumerate(decisions)
            if d.action is not ScaleAction.HOLD
        ]
        cooldown = report.config.policy.cooldown_intervals
        for a, b in zip(fired, fired[1:]):
            assert b - a >= cooldown + 1


class TestChaosSeams:
    def test_forced_drain_retires_a_fleet(self):
        doc = run_cluster_loadtest(
            small_spec(),
            small_config(
                autoscale=False,
                forced_scale=(ForcedScaleEvent(at_s=2.0, action="drain"),),
            ),
        ).as_dict()
        assert doc["fleets"]["final"] == 1
        retired = [
            f for f in doc["fleets"]["members"]
            if f["retired_s"] is not None
        ]
        assert len(retired) == 1
        assert retired[0]["drained_s"] is not None
        assert retired[0]["retired_s"] >= retired[0]["drained_s"]
        assert doc["counters"]["faults.injected.forced_scale"] == 1

    def test_forced_drain_refused_at_min_fleets(self):
        doc = run_cluster_loadtest(
            small_spec(),
            small_config(
                initial_fleets=1, autoscale=False,
                forced_scale=(ForcedScaleEvent(at_s=2.0, action="drain"),),
            ),
        ).as_dict()
        assert doc["fleets"]["final"] == 1
        assert doc["counters"].get("faults.injected.forced_scale", 0) == 0

    def test_fleet_fault_applies_and_recovers(self):
        doc = run_cluster_loadtest(
            small_spec(duration_s=8.0),
            small_config(
                autoscale=False,
                fleet_faults=(
                    FleetFaultEvent(at_s=2.0, fleet_ordinal=0, outage_s=1.5),
                ),
            ),
        ).as_dict()
        assert doc["counters"]["faults.injected.fleet_outage"] == 1
        outages = [f["outages"] for f in doc["fleets"]["members"]]
        assert sum(outages) == 1
        # Recovery rejoins the ring: both fleets end the run alive.
        assert doc["fleets"]["final"] == 2
        assert doc["requests"]["unaccounted"] == 0

    def test_chaos_runs_stay_byte_identical(self):
        config = small_config(
            fleet_faults=(
                FleetFaultEvent(at_s=1.5, fleet_ordinal=1, outage_s=1.0),
            ),
            forced_scale=(
                ForcedScaleEvent(at_s=2.5, action="add"),
                ForcedScaleEvent(at_s=4.0, action="drain"),
            ),
        )
        a = run_cluster_loadtest(small_spec(), config)
        b = run_cluster_loadtest(small_spec(), config)
        assert a.to_json() == b.to_json()


class TestReport:
    def test_document_is_cached(self):
        report = run_cluster_loadtest(small_spec(), small_config())
        assert report.as_dict() is report.as_dict()

    def test_json_round_trip(self, tmp_path):
        import json

        report = run_cluster_loadtest(small_spec(), small_config())
        path = report.write_json(tmp_path / "cluster.json")
        assert json.loads(path.read_text()) == report.as_dict()

    def test_summary_lines_render(self):
        report = run_cluster_loadtest(small_spec(), small_config())
        text = "\n".join(report.summary_lines())
        assert "requests generated" in text
        assert "fleets peak / final" in text
