"""Timer wheel: virtual-time ordering with deterministic tie-breaks."""

from repro.serve.cluster.events import (
    EVENT_EPOCH,
    EVENT_FLEET_FAULT,
    TimerEvent,
    TimerWheel,
)


class TestOrdering:
    def test_pops_in_time_order(self):
        wheel = TimerWheel()
        for at in (3.0, 1.0, 2.0):
            wheel.schedule(at, EVENT_EPOCH)
        assert [wheel.pop().at_s for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_ties_break_on_push_order(self):
        wheel = TimerWheel()
        wheel.schedule(1.0, EVENT_EPOCH, payload="first")
        wheel.schedule(1.0, EVENT_FLEET_FAULT, payload="second")
        wheel.schedule(1.0, EVENT_EPOCH, payload="third")
        assert [wheel.pop().payload for _ in range(3)] == [
            "first", "second", "third",
        ]

    def test_payload_never_participates_in_comparison(self):
        # Payloads may be uncomparable objects; ordering is (at_s, seq).
        wheel = TimerWheel()
        wheel.schedule(1.0, EVENT_EPOCH, payload={"a": 1})
        wheel.schedule(1.0, EVENT_EPOCH, payload={"b": 2})
        assert wheel.pop().payload == {"a": 1}

    def test_timestamps_rounded_to_nanoseconds(self):
        wheel = TimerWheel()
        wheel.schedule(0.1 + 0.2, EVENT_EPOCH)
        assert wheel.pop().at_s == round(0.1 + 0.2, 9)


class TestPopUntil:
    def test_pop_until_is_inclusive_and_ordered(self):
        wheel = TimerWheel()
        for at in (0.5, 1.0, 1.5, 2.0):
            wheel.schedule(at, EVENT_EPOCH)
        drained = [e.at_s for e in wheel.pop_until(1.5)]
        assert drained == [0.5, 1.0, 1.5]
        assert len(wheel) == 1

    def test_counters_track_throughput(self):
        wheel = TimerWheel()
        for at in (1.0, 2.0):
            wheel.schedule(at, EVENT_EPOCH)
        list(wheel.pop_until(10.0))
        assert (wheel.pushed, wheel.popped) == (2, 2)
        assert not wheel

    def test_event_is_frozen(self):
        event = TimerEvent(at_s=1.0, seq=0, kind=EVENT_EPOCH)
        try:
            event.at_s = 2.0
        except AttributeError:
            return
        raise AssertionError("TimerEvent must be immutable")
