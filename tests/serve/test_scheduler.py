"""Tests for micro-batch formation, placement and cost charging."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.multitenancy import FleetSpec
from repro.serve.admission import QueuedRequest
from repro.serve.api import Outcome, Priority, SolveRequest
from repro.serve.cache import PlanCache
from repro.serve.profile import (
    BATCH_MEMBER_DISPATCH_SECONDS,
    DISPATCH_OVERHEAD_SECONDS,
    SolveProfile,
)
from repro.serve.scheduler import MicroBatchScheduler

SWAP_S = 5e-3


def profile(label, fingerprint, signature, final=1e-4):
    return SolveProfile(
        label=label,
        fingerprint=fingerprint,
        plan_signature=signature,
        n=100,
        nnz=500,
        converged=True,
        solver_sequence=("cg",),
        iterations=10,
        attempt_compute_s=(2e-4, final),
        solver_swap_s=SWAP_S,
        analysis_s=1e-3,
    )


PROFILES = {
    "A": profile("A", "fp-a", "sig-shared"),
    "B": profile("B", "fp-b", "sig-shared"),
    "C": profile("C", "fp-c", "sig-other"),
    "bad": "ValueError: no good",
}


def queued(rid, source, priority=Priority.BATCH, arrival=0.0, admitted=0.0):
    return QueuedRequest(
        request=SolveRequest(
            request_id=rid,
            source=source,
            arrival_s=arrival,
            priority=priority,
        ),
        admitted_s=admitted,
        cost=1.0,
    )


def make_scheduler(cache=None, slots=2, max_batch=4, window=1e-3):
    return MicroBatchScheduler(
        fleet=FleetSpec(devices=1, slots_per_device=slots),
        profiles=dict(PROFILES),
        cache=cache,
        max_batch=max_batch,
        batch_window_s=window,
        solver_swap_s=SWAP_S,
    )


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            make_scheduler(max_batch=0)
        with pytest.raises(ConfigurationError):
            make_scheduler(window=-1.0)


class TestGrouping:
    def test_same_fingerprint_one_batch(self):
        scheduler = make_scheduler()
        queue = [queued(0, "A"), queued(1, "A"), queued(2, "C")]
        responses, remaining, _ = scheduler.dispatch(queue, now=0.01, next_batch_id=0)
        assert remaining == []
        batches = {r.request_id: r.batch_id for r in responses}
        assert batches[0] == batches[1]
        assert batches[2] != batches[0]

    def test_failed_profile_isolated_and_reported(self):
        scheduler = make_scheduler()
        queue = [queued(0, "A"), queued(1, "bad")]
        responses, remaining, _ = scheduler.dispatch(queue, now=0.01, next_batch_id=0)
        assert remaining == []
        by_id = {r.request_id: r for r in responses}
        assert by_id[0].outcome is Outcome.COMPLETED
        assert by_id[1].outcome is Outcome.FAILED
        assert "ValueError" in by_id[1].detail

    def test_max_batch_splits_group(self):
        scheduler = make_scheduler(max_batch=2)
        queue = [queued(i, "A") for i in range(3)]
        responses, remaining, _ = scheduler.dispatch(queue, now=0.01, next_batch_id=0)
        sizes = sorted(b.size for b in scheduler.batches)
        assert sizes == [1, 2]
        assert remaining == []

    def test_batch_window_holds_back_small_batch_groups(self):
        scheduler = make_scheduler(window=5e-3)
        queue = [queued(0, "A", admitted=0.0)]
        _, remaining, _ = scheduler.dispatch(queue, now=1e-3, next_batch_id=0)
        assert len(remaining) == 1  # not ripe yet
        responses, remaining, _ = scheduler.dispatch(
            remaining, now=6e-3, next_batch_id=0
        )
        assert remaining == []
        assert responses[0].outcome is Outcome.COMPLETED

    def test_interactive_head_dispatches_immediately(self):
        scheduler = make_scheduler(window=5e-3)
        queue = [queued(0, "A", priority=Priority.INTERACTIVE, admitted=0.0)]
        responses, remaining, _ = scheduler.dispatch(
            queue, now=1e-4, next_batch_id=0
        )
        assert remaining == []
        assert responses


class TestCostCharging:
    def test_cold_batch_head_pays_full_later_members_amortize(self):
        cache = PlanCache(capacity=8)
        scheduler = make_scheduler(cache=cache)
        prof = PROFILES["A"]
        queue = [queued(0, "A"), queued(1, "A")]
        responses, _, _ = scheduler.dispatch(queue, now=0.01, next_batch_id=0)
        by_id = {r.request_id: r for r in responses}
        assert by_id[0].service_s == pytest.approx(
            DISPATCH_OVERHEAD_SECONDS + prof.cold_service_s
        )
        # Later members of a fingerprint micro-batch reuse the head's
        # descriptor and lookup: amortized dispatch, warm device time.
        assert by_id[1].service_s == pytest.approx(
            BATCH_MEMBER_DISPATCH_SECONDS + prof.warm_service_s
        )
        # Amortized members of a cold batch are still cache *misses*.
        assert not by_id[0].cache_hit
        assert not by_id[1].cache_hit

    def test_warm_batch_members_are_cache_hits(self):
        cache = PlanCache(capacity=8)
        scheduler = make_scheduler(cache=cache)
        scheduler.dispatch([queued(0, "A")], now=0.01, next_batch_id=0)
        responses, _, _ = scheduler.dispatch(
            [queued(1, "A", arrival=0.1, admitted=0.1)],
            now=0.11,
            next_batch_id=1,
        )
        assert responses[0].cache_hit
        assert responses[0].service_s == pytest.approx(
            DISPATCH_OVERHEAD_SECONDS + PROFILES["A"].warm_service_s
        )

    def test_no_cache_reloads_configuration_every_batch(self):
        scheduler = make_scheduler(cache=None, slots=1)
        first, _, _ = scheduler.dispatch(
            [queued(0, "A")], now=0.01, next_batch_id=0
        )
        second, _, _ = scheduler.dispatch(
            [queued(1, "A", arrival=0.1, admitted=0.1)],
            now=0.2,
            next_batch_id=1,
        )
        assert scheduler.slots[0].config_loads == 2
        assert all(not r.cache_hit for r in first + second)

    def test_affinity_skips_configuration_load_on_resident_slot(self):
        cache = PlanCache(capacity=8)
        scheduler = make_scheduler(cache=cache, slots=2)
        scheduler.dispatch([queued(0, "A")], now=0.01, next_batch_id=0)
        # Same plan signature, different fingerprint: slot 0 is resident.
        scheduler.dispatch(
            [queued(1, "B", arrival=0.1, admitted=0.1)],
            now=0.2,
            next_batch_id=1,
        )
        loads = sorted(s.config_loads for s in scheduler.slots)
        assert loads == [0, 1]  # second batch reused the configured slot

    def test_tenancy_bounds_concurrency(self):
        scheduler = make_scheduler(slots=1)
        queue = [queued(0, "A"), queued(1, "C")]
        responses, remaining, _ = scheduler.dispatch(
            queue, now=0.01, next_batch_id=0
        )
        # One slot: the incompatible second group must wait.
        assert len(responses) == 1
        assert len(remaining) == 1
        assert not scheduler.has_free_slot(0.01)


class TestDeviceFaults:
    """Modeled device outages through the scheduler's fault seam."""

    def make_faulty(self, faults, slots=1, cache=None):
        from repro.serve.scheduler import DeviceFaultEvent

        events = tuple(DeviceFaultEvent(*f) for f in faults)
        return MicroBatchScheduler(
            fleet=FleetSpec(devices=1, slots_per_device=slots),
            profiles=dict(PROFILES),
            cache=cache,
            max_batch=4,
            batch_window_s=1e-3,
            solver_swap_s=SWAP_S,
            device_faults=events,
        )

    def test_outage_delays_placement_until_slot_recovers(self):
        # (at_s, slot, outage_s): slot 0 is down for [0, 0.1).
        scheduler = self.make_faulty([(0.0, 0, 0.1)])
        queue = [queued(0, "A")]
        responses, queue, _ = scheduler.dispatch(queue, now=0.05, next_batch_id=0)
        assert responses == []
        assert len(queue) == 1
        assert scheduler.slots[0].outages == 1
        responses, queue, _ = scheduler.dispatch(queue, now=0.2, next_batch_id=0)
        assert len(responses) == 1
        assert responses[0].outcome is Outcome.COMPLETED
        assert queue == []

    def test_outage_evicts_resident_configuration(self):
        scheduler = self.make_faulty(
            [(0.5, 0, 0.01)], cache=PlanCache(capacity=8)
        )
        queue = [queued(0, "A")]
        _, queue, _ = scheduler.dispatch(queue, now=0.01, next_batch_id=0)
        assert scheduler.slots[0].resident_signature is not None
        scheduler.apply_device_faults(now=0.5)
        assert scheduler.slots[0].resident_signature is None

    def test_faults_apply_once_and_in_order(self):
        from repro.telemetry import Telemetry

        scheduler = self.make_faulty([(0.2, 0, 0.01), (0.1, 0, 0.01)])
        # __post_init__ sorts by time regardless of construction order.
        assert [e.at_s for e in scheduler.device_faults] == [0.1, 0.2]
        collector = Telemetry()
        with collector.activate():
            scheduler.apply_device_faults(now=0.15)  # only the first is due
            assert scheduler.slots[0].outages == 1
            scheduler.apply_device_faults(now=0.15)  # idempotent
            assert scheduler.slots[0].outages == 1
            scheduler.apply_device_faults(now=1.0)
            assert scheduler.slots[0].outages == 2
        assert collector.counters["serve.device_faults"] == 2

    def test_negative_outage_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_faulty([(0.0, 0, -1.0)])
