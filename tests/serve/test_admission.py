"""Tests for the bounded admission queue with preemptive admission."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import AdmissionController, AdmissionVerdict
from repro.serve.api import Priority, SolveRequest


def request(rid, priority=Priority.BATCH, arrival=None, deadline=None):
    return SolveRequest(
        request_id=rid,
        source="Wa",
        arrival_s=float(rid) * 1e-3 if arrival is None else arrival,
        priority=priority,
        deadline_s=deadline,
    )


class TestAdmission:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=0)

    def test_admits_under_capacity(self):
        controller = AdmissionController(capacity=2)
        verdict, victim = controller.offer(request(0), now=0.0)
        assert verdict is AdmissionVerdict.ADMITTED
        assert victim is None
        assert controller.depth() == 1

    def test_sheds_when_full_and_not_outranking(self):
        controller = AdmissionController(capacity=1)
        controller.offer(request(0, Priority.BATCH), now=0.0)
        verdict, victim = controller.offer(
            request(1, Priority.BATCH), now=0.0
        )
        assert verdict is AdmissionVerdict.SHED_QUEUE_FULL
        assert victim is None
        assert controller.shed_full == 1
        assert controller.depth() == 1

    def test_preempts_lowest_priority_youngest(self):
        controller = AdmissionController(capacity=3)
        controller.offer(request(0, Priority.BATCH), now=0.0)
        controller.offer(request(1, Priority.BEST_EFFORT), now=0.0)
        controller.offer(request(2, Priority.BEST_EFFORT), now=0.0)
        verdict, victim = controller.offer(
            request(3, Priority.INTERACTIVE), now=0.0
        )
        assert verdict is AdmissionVerdict.ADMITTED
        # Victim is the lowest class, and within it the youngest arrival.
        assert victim.request.request_id == 2
        assert controller.preemptions == 1
        assert controller.depth() == 3

    def test_queue_sorted_by_priority_then_fifo(self):
        controller = AdmissionController(capacity=8)
        controller.offer(request(0, Priority.BEST_EFFORT), now=0.0)
        controller.offer(request(1, Priority.INTERACTIVE), now=0.0)
        controller.offer(request(2, Priority.BATCH), now=0.0)
        controller.offer(request(3, Priority.INTERACTIVE), now=0.0)
        ids = [q.request.request_id for q in controller.queue]
        assert ids == [1, 3, 2, 0]

    def test_sheds_lapsed_deadline_on_arrival(self):
        controller = AdmissionController(capacity=8)
        verdict, _ = controller.offer(
            request(0, Priority.INTERACTIVE, arrival=1.0, deadline=0.5),
            now=1.0,
        )
        assert verdict is AdmissionVerdict.SHED_DEADLINE
        assert controller.shed_deadline == 1

    def test_sheds_unmeetable_deadline(self):
        controller = AdmissionController(
            capacity=8, min_service_estimate_s=0.1
        )
        verdict, _ = controller.offer(
            request(0, Priority.INTERACTIVE, arrival=0.0, deadline=0.05),
            now=0.0,
        )
        assert verdict is AdmissionVerdict.SHED_DEADLINE

    def test_expire_removes_lapsed_only(self):
        controller = AdmissionController(capacity=8)
        controller.offer(
            request(0, Priority.INTERACTIVE, arrival=0.0, deadline=0.01),
            now=0.0,
        )
        controller.offer(request(1, Priority.BATCH, arrival=0.0), now=0.0)
        lapsed = controller.expire(now=0.02)
        assert [q.request.request_id for q in lapsed] == [0]
        assert [q.request.request_id for q in controller.queue] == [1]
        assert controller.expire(now=0.02) == []


class TestDeadlineBoundary:
    """Regression pins for the single-sourced boundary predicates.

    Both admission and the expiry sweep resolve "has this deadline
    passed" through the same predicate, with a closed boundary: a
    deadline exactly equal to now has lapsed.  The feasibility floor is
    the opposite edge: a deadline exactly now + min_service_estimate_s
    is still admissible.
    """

    def test_deadline_equal_to_now_is_shed_at_admission(self):
        controller = AdmissionController(capacity=4)
        verdict, victim = controller.offer(
            request(0, deadline=5.0), now=5.0
        )
        assert verdict is AdmissionVerdict.SHED_DEADLINE
        assert victim is None
        assert controller.shed_deadline == 1

    def test_deadline_equal_to_now_expires_in_queue(self):
        controller = AdmissionController(capacity=4)
        verdict, _ = controller.offer(request(0, deadline=5.0), now=0.0)
        assert verdict is AdmissionVerdict.ADMITTED
        assert controller.expire(now=4.999999) == []
        lapsed = controller.expire(now=5.0)
        assert [q.request.request_id for q in lapsed] == [0]
        assert controller.depth() == 0

    def test_deadline_exactly_at_service_floor_is_admissible(self):
        controller = AdmissionController(
            capacity=4, min_service_estimate_s=0.010
        )
        verdict, _ = controller.offer(
            request(0, deadline=1.010), now=1.0
        )
        assert verdict is AdmissionVerdict.ADMITTED

    def test_deadline_inside_service_floor_is_shed(self):
        controller = AdmissionController(
            capacity=4, min_service_estimate_s=0.010
        )
        verdict, _ = controller.offer(
            request(0, deadline=1.0099999), now=1.0
        )
        assert verdict is AdmissionVerdict.SHED_DEADLINE

    def test_predicates_are_single_sourced(self):
        from repro.serve.admission import deadline_lapsed, deadline_unmeetable

        assert deadline_lapsed(5.0, 5.0)
        assert not deadline_lapsed(5.0, 4.999999999)
        assert not deadline_lapsed(None, 1e9)
        assert not deadline_unmeetable(None, 0.0, 10.0)
        assert not deadline_unmeetable(1.010, 1.0, 0.010)
        assert deadline_unmeetable(1.009, 1.0, 0.010)
        assert deadline_unmeetable(0.5, 1.0, 0.0)
