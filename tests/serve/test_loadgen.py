"""Tests for the deterministic synthetic load generator."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.api import Priority
from repro.serve.loadgen import (
    LoadSpec,
    generate_requests,
    read_request_log,
    write_request_log,
)


class TestLoadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            LoadSpec(rate_rps=0.0)
        with pytest.raises(ConfigurationError):
            LoadSpec(mix="mystery")


class TestGenerateRequests:
    def test_same_seed_same_log(self):
        a = generate_requests(LoadSpec(seed=3, duration_s=1.0))
        b = generate_requests(LoadSpec(seed=3, duration_s=1.0))
        assert a == b

    def test_different_seed_different_log(self):
        a = generate_requests(LoadSpec(seed=3, duration_s=1.0))
        b = generate_requests(LoadSpec(seed=4, duration_s=1.0))
        assert a != b

    def test_arrivals_ordered_and_bounded(self):
        requests = generate_requests(LoadSpec(seed=0, duration_s=2.0))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 2.0 for t in arrivals)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_rate_roughly_honored(self):
        requests = generate_requests(
            LoadSpec(seed=0, duration_s=5.0, rate_rps=100.0)
        )
        assert 350 <= len(requests) <= 650  # ~500 expected

    def test_repeat_heavy_concentrates_sources(self):
        requests = generate_requests(
            LoadSpec(seed=0, duration_s=5.0, mix="repeat-heavy")
        )
        counts: dict[str, int] = {}
        for r in requests:
            counts[r.source] = counts.get(r.source, 0) + 1
        top = sorted(counts.values(), reverse=True)[:6]
        assert sum(top) / len(requests) > 0.6

    def test_uniform_spreads_sources(self):
        requests = generate_requests(
            LoadSpec(seed=0, duration_s=5.0, mix="uniform")
        )
        counts: dict[str, int] = {}
        for r in requests:
            counts[r.source] = counts.get(r.source, 0) + 1
        top = sorted(counts.values(), reverse=True)[:6]
        assert sum(top) / len(requests) < 0.5

    def test_bursty_generates_more_than_flat(self):
        flat = generate_requests(
            LoadSpec(seed=0, duration_s=5.0, mix="repeat-heavy")
        )
        bursty = generate_requests(
            LoadSpec(seed=0, duration_s=5.0, mix="bursty")
        )
        assert len(bursty) > len(flat)

    def test_interactive_requests_carry_deadline(self):
        requests = generate_requests(LoadSpec(seed=0, duration_s=2.0))
        interactive = [
            r for r in requests if r.priority is Priority.INTERACTIVE
        ]
        assert interactive
        for r in interactive:
            assert r.deadline_s == pytest.approx(r.arrival_s + 0.1)
        for r in requests:
            if r.priority is not Priority.INTERACTIVE:
                assert r.deadline_s is None

    def test_explicit_sources_respected(self):
        requests = generate_requests(
            LoadSpec(seed=0, duration_s=1.0, sources=("Wa", "Li"))
        )
        assert {r.source for r in requests} <= {"Wa", "Li"}


class TestRequestLogRoundTrip:
    def test_round_trips_exactly(self, tmp_path):
        requests = generate_requests(LoadSpec(seed=5, duration_s=1.0))
        path = write_request_log(requests, tmp_path / "req.jsonl")
        assert read_request_log(path) == requests
