"""End-to-end tests of the serving simulator and its report."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.multitenancy import FleetSpec
from repro.serve.api import Outcome, Priority, SolveRequest
from repro.serve.loadgen import LoadSpec, generate_requests
from repro.serve.service import (
    ServiceConfig,
    build_profiles,
    run_loadtest,
    run_service,
)

SOURCES = ("Wa", "Li")


def small_spec(**overrides):
    base = dict(seed=0, duration_s=1.0, rate_rps=60.0, sources=SOURCES)
    base.update(overrides)
    return LoadSpec(**base)


def small_config(**overrides):
    base = dict(fleet=FleetSpec(devices=1, slots_per_device=2))
    base.update(overrides)
    return ServiceConfig(**base)


@pytest.fixture(scope="module")
def baseline_report():
    return run_loadtest(small_spec(), small_config())


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(tick_ms=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(workers=0)

    def test_workers_excluded_from_report_dict(self):
        assert "workers" not in ServiceConfig(workers=4).as_dict()


class TestBuildProfiles:
    def test_profiles_unique_sources_once(self):
        profiles = build_profiles(
            ["Wa", "Li", "Wa"], acamar_config(), workers=1
        )
        assert set(profiles) == {"Wa", "Li"}
        assert profiles["Wa"].converged

    def test_failure_maps_to_error_string(self):
        profiles = build_profiles(["Wa", "bogus-key"], acamar_config())
        assert profiles["Wa"].converged
        assert isinstance(profiles["bogus-key"], str)
        assert "bogus-key" in profiles["bogus-key"]


def acamar_config():
    from repro.config import AcamarConfig

    return AcamarConfig()


class TestAccountingInvariant:
    def test_every_request_has_exactly_one_response(self, baseline_report):
        report = baseline_report
        assert report.unaccounted == 0
        ids = sorted(r.request_id for r in report.responses)
        assert ids == sorted(r.request_id for r in report.requests)

    def test_invariant_holds_under_overload(self):
        # Tiny queue + one slot + high rate: shed and preemption paths fire.
        report = run_loadtest(
            small_spec(rate_rps=600.0, mix="bursty"),
            small_config(
                queue_capacity=4,
                fleet=FleetSpec(devices=1, slots_per_device=1),
            ),
        )
        assert report.unaccounted == 0
        assert report.shed_count > 0
        doc = report.as_dict(include_responses=False)
        assert doc["requests"]["unaccounted"] == 0
        assert doc["queue"]["max_depth"] <= 4

    def test_shed_responses_carry_detail(self):
        report = run_loadtest(
            small_spec(rate_rps=600.0, mix="bursty"),
            small_config(
                queue_capacity=4,
                fleet=FleetSpec(devices=1, slots_per_device=1),
            ),
        )
        for response in report.responses:
            if response.outcome is Outcome.SHED:
                assert response.detail


class TestDeterminism:
    def test_same_spec_byte_identical_report(self, baseline_report):
        again = run_loadtest(small_spec(), small_config())
        assert again.to_json() == baseline_report.to_json()

    def test_replayed_log_matches_live_run(self, baseline_report):
        requests = generate_requests(small_spec())
        replay = run_service(requests, small_config())
        assert [r.as_dict() for r in replay.responses] == [
            r.as_dict() for r in baseline_report.responses
        ]

    def test_worker_count_does_not_change_report(self, baseline_report):
        multi = run_loadtest(small_spec(), small_config(workers=2))
        assert multi.to_json() == baseline_report.to_json()


class TestCacheEffect:
    def test_cache_beats_no_cache_on_repeat_traffic(self, baseline_report):
        no_cache = run_loadtest(
            small_spec(), small_config(cache_enabled=False)
        )
        warm = baseline_report.as_dict(include_responses=False)
        cold = no_cache.as_dict(include_responses=False)
        assert warm["cache"]["enabled"] and not cold["cache"]["enabled"]
        assert cold["cache"]["hit_rate"] == 0.0
        assert warm["cache"]["hit_rate"] > 0.5
        assert (
            warm["latency_ms"]["overall"]["p50"]
            < cold["latency_ms"]["overall"]["p50"]
        )
        # Residency tracking needs the cache: without it every batch
        # placement reloads the solver region.
        assert cold["batches"]["config_loads"] == cold["batches"]["count"]
        assert warm["batches"]["config_loads"] < warm["batches"]["count"]


class TestFailedSources:
    def test_unprofileable_source_yields_failed_responses(self):
        requests = [
            SolveRequest(request_id=0, source="Wa", arrival_s=0.0),
            SolveRequest(request_id=1, source="bogus-key", arrival_s=0.001),
        ]
        report = run_service(requests, small_config())
        by_id = {r.request_id: r for r in report.responses}
        assert by_id[0].outcome is Outcome.COMPLETED
        assert by_id[1].outcome is Outcome.FAILED
        assert report.unaccounted == 0


class TestDeadlines:
    def test_hopeless_deadline_is_shed_not_queued(self):
        requests = [
            SolveRequest(
                request_id=0,
                source="Wa",
                arrival_s=0.0,
                priority=Priority.INTERACTIVE,
                deadline_s=0.0,
            ),
        ]
        report = run_service(requests, small_config())
        assert report.responses[0].outcome is Outcome.SHED


class TestReport:
    def test_summary_lines_render(self, baseline_report):
        lines = baseline_report.summary_lines()
        assert any("requests generated" in line for line in lines)
        assert any("cache hit rate" in line for line in lines)

    def test_json_report_shape(self, baseline_report, tmp_path):
        import json

        path = baseline_report.write_json(tmp_path / "report.json")
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert document["requests"]["generated"] == len(
            baseline_report.requests
        )
        assert set(document["latency_ms"]["by_priority"]) == {
            "interactive", "batch", "best_effort",
        }
        assert len(document["responses"]) == len(baseline_report.responses)
        assert document["fleet"]["total_slots"] == 2

    def test_response_log_round_trip(self, baseline_report, tmp_path):
        import json

        path = baseline_report.write_response_log(tmp_path / "resp.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(baseline_report.responses)
        first = json.loads(lines[0])
        assert first["request_id"] == baseline_report.responses[0].request_id

    def test_latency_distribution_in_telemetry(self, baseline_report):
        distributions = baseline_report.telemetry.distributions
        assert len(distributions["serve.latency_ms"]) == len(
            baseline_report.completed
        )
