"""Placement-parity suite: the mixed-fleet backend must be invisible
when disabled and byte-deterministic when enabled.

Three contracts, each pinned hard:

1. **Forced single-backend = pre-PR behavior.**  With ``gpu_tenants=0``
   and ``cpu_assist=False`` the serving and cluster reports reproduce
   the exact pre-placement numbers (golds below) and carry *no*
   placement/GPU keys — schema parity, not just value parity.
2. **Byte determinism.**  A mixed FPGA+GPU run serializes to the same
   bytes on every run and for every ``workers`` value.
3. **Class-scoped faults.**  A GPU-tenant fault can never evict an
   FPGA plan (satellite 3), and fault application is idempotent.
"""

import json

import pytest

from repro.fpga import FleetSpec
from repro.placement import FPGA, GPU, STRUCTURAL_CLASSES
from repro.serve import (
    LoadSpec,
    ServiceConfig,
    generate_requests,
    run_cluster_loadtest,
    run_service,
)
from repro.serve.cluster.service import ClusterConfig, ClusterLoadSpec
from repro.serve.scheduler import DeviceFaultEvent, MicroBatchScheduler

# Pre-PR pinned numbers: LoadSpec(seed=7, 2 s, 120 rps) on a pure-FPGA
# 1x3 fleet.  The placement backend must not move any of them.
SERVE_GOLD = {
    "completed": 234,
    "p50_ms": 1.713229,
    "p99_ms": 10.366278,
    "batches": 227,
    "config_loads": 105,
    "device_seconds": 0.672930512,
    "hit_rate": 0.897435897,
}

# Pre-PR pinned numbers: ClusterLoadSpec(seed=3, 12 s, 400 rps,
# repeat-heavy) on 2..4 fleets of 3 FPGA slots.
CLUSTER_GOLD = {
    "completed": 4858,
    "p50_ms": 36.845326,
    "p99_ms": 60.83524,
    "batches": 1782,
    "config_loads": 1480,
    "device_seconds": 11.020792008,
    "peak": 2,
}

MIXED_FLEET = FleetSpec(
    devices=1, slots_per_device=2, gpu_tenants=2, cpu_assist=True
)


def _serve_report(fleet: FleetSpec, workers: int = 1):
    requests = generate_requests(
        LoadSpec(seed=7, duration_s=2.0, rate_rps=120.0)
    )
    return run_service(
        requests, ServiceConfig(fleet=fleet, workers=workers)
    )


def _cluster_report(config: ClusterConfig):
    spec = ClusterLoadSpec(
        seed=3, duration_s=12.0, rate_rps=400.0, mix="repeat-heavy"
    )
    return run_cluster_loadtest(spec, config)


class TestForcedSingleBackend:
    """gpu_tenants=0 must reproduce the pre-PR reports exactly."""

    def test_serve_gold_values(self):
        doc = _serve_report(FleetSpec(devices=1, slots_per_device=3)).as_dict()
        assert doc["requests"]["completed"] == SERVE_GOLD["completed"]
        assert doc["latency_ms"]["overall"]["p50"] == SERVE_GOLD["p50_ms"]
        assert doc["latency_ms"]["overall"]["p99"] == SERVE_GOLD["p99_ms"]
        assert doc["batches"]["count"] == SERVE_GOLD["batches"]
        assert doc["batches"]["config_loads"] == SERVE_GOLD["config_loads"]
        assert doc["fleet"]["device_seconds"] == SERVE_GOLD["device_seconds"]
        assert doc["cache"]["hit_rate"] == SERVE_GOLD["hit_rate"]

    def test_serve_schema_parity(self):
        doc = _serve_report(FleetSpec(devices=1, slots_per_device=3)).as_dict()
        assert "placement" not in doc
        assert "gpu_tenants" not in doc["serving"]["fleet"]
        assert "cpu_assist" not in doc["serving"]["fleet"]
        text = json.dumps(doc)
        assert "gpu_batches" not in text
        assert "cpu_assist" not in text

    def test_cluster_gold_values(self):
        doc = _cluster_report(
            ClusterConfig(
                initial_fleets=2, min_fleets=1, max_fleets=4,
                slots_per_fleet=3,
            )
        ).as_dict()
        assert doc["requests"]["completed"] == CLUSTER_GOLD["completed"]
        assert doc["latency_ms"]["overall"]["p50"] == CLUSTER_GOLD["p50_ms"]
        assert doc["latency_ms"]["overall"]["p99"] == CLUSTER_GOLD["p99_ms"]
        assert doc["batches"]["count"] == CLUSTER_GOLD["batches"]
        assert doc["batches"]["config_loads"] == CLUSTER_GOLD["config_loads"]
        assert doc["fleets"]["device_seconds"] == CLUSTER_GOLD["device_seconds"]
        assert doc["fleets"]["peak"] == CLUSTER_GOLD["peak"]

    def test_cluster_schema_parity(self):
        doc = _cluster_report(
            ClusterConfig(
                initial_fleets=2, min_fleets=1, max_fleets=4,
                slots_per_fleet=3,
            )
        ).as_dict()
        assert "placement" not in doc
        text = json.dumps(doc)
        assert "gpu_tenants" not in text
        assert "gpu_batches" not in text
        assert "cpu_assist" not in text


class TestByteDeterminism:
    def test_mixed_serve_identical_across_runs(self):
        first = json.dumps(_serve_report(MIXED_FLEET).as_dict(), sort_keys=True)
        second = json.dumps(_serve_report(MIXED_FLEET).as_dict(), sort_keys=True)
        assert first == second

    @pytest.mark.parametrize("workers", [2, 3])
    def test_mixed_serve_identical_across_workers(self, workers):
        base = json.dumps(_serve_report(MIXED_FLEET).as_dict(), sort_keys=True)
        sharded = json.dumps(
            _serve_report(MIXED_FLEET, workers=workers).as_dict(),
            sort_keys=True,
        )
        assert base == sharded

    def test_mixed_cluster_identical_across_workers(self):
        config = dict(
            initial_fleets=2, min_fleets=1, max_fleets=4,
            slots_per_fleet=2, gpu_tenants_per_fleet=2,
            max_gpu_tenants=3, cpu_assist=True,
        )
        base = json.dumps(
            _cluster_report(ClusterConfig(**config)).as_dict(), sort_keys=True
        )
        sharded = json.dumps(
            _cluster_report(ClusterConfig(**config, workers=2)).as_dict(),
            sort_keys=True,
        )
        assert base == sharded


class TestMixedFleetDecisions:
    def test_placement_section_is_complete_and_valid(self):
        doc = _serve_report(MIXED_FLEET).as_dict()
        section = doc["placement"]
        decisions = section["sources"].values()
        assert decisions, "mixed run profiled no sources"
        for decision in decisions:
            assert decision["device_class"] in (FPGA, GPU)
            assert decision["structural_class"] in STRUCTURAL_CLASSES
            assert not decision["forced"]
            assert decision["fpga_batch_s"] > 0.0
            assert decision["gpu_batch_s"] > 0.0
        assert section["by_class"][FPGA] + section["by_class"][GPU] == len(
            section["sources"]
        )
        matrix_total = sum(
            count
            for row in section["scenario_matrix"].values()
            for count in row.values()
        )
        assert matrix_total == len(section["sources"])

    def test_both_classes_win_somewhere(self):
        # The decision layer is only earning its keep if the traffic
        # splits; the seed-7 registry mix does split.
        by_class = _serve_report(MIXED_FLEET).as_dict()["placement"]["by_class"]
        assert by_class[FPGA] > 0
        assert by_class[GPU] > 0

    def test_single_backend_decisions_are_forced(self):
        doc = _serve_report(
            FleetSpec(devices=1, slots_per_device=0, gpu_tenants=2)
        ).as_dict()
        for decision in doc["placement"]["sources"].values():
            assert decision["device_class"] == GPU
            assert decision["forced"]


class TestClassScopedFaults:
    """Satellite 3: fault isolation between co-scheduled device classes."""

    def _scheduler(self, faults):
        return MicroBatchScheduler(
            fleet=MIXED_FLEET, profiles={}, device_faults=faults
        )

    def test_gpu_fault_cannot_evict_fpga_plan(self):
        scheduler = self._scheduler(
            (DeviceFaultEvent(at_s=1.0, slot=0, outage_s=0.5,
                              device_class=GPU),)
        )
        fpga_slots = [s for s in scheduler.slots if s.device_class == FPGA]
        gpu_slots = [s for s in scheduler.slots if s.device_class == GPU]
        for slot in scheduler.slots:
            slot.resident_signature = f"plan-{slot.index}"
        scheduler.apply_device_faults(now=2.0)
        assert all(s.resident_signature for s in fpga_slots)
        assert all(s.outages == 0 for s in fpga_slots)
        assert gpu_slots[0].resident_signature is None
        assert gpu_slots[0].outages == 1
        assert gpu_slots[1].resident_signature is not None

    def test_fpga_fault_cannot_evict_gpu_plan(self):
        scheduler = self._scheduler(
            (DeviceFaultEvent(at_s=1.0, slot=1, outage_s=0.5,
                              device_class=FPGA),)
        )
        for slot in scheduler.slots:
            slot.resident_signature = f"plan-{slot.index}"
        scheduler.apply_device_faults(now=2.0)
        gpu_slots = [s for s in scheduler.slots if s.device_class == GPU]
        assert all(s.resident_signature for s in gpu_slots)
        assert all(s.outages == 0 for s in gpu_slots)
        fpga_hit = [s for s in scheduler.slots if s.device_class == FPGA][1]
        assert fpga_hit.resident_signature is None
        assert fpga_hit.outages == 1

    def test_fault_application_is_idempotent(self):
        scheduler = self._scheduler(
            (DeviceFaultEvent(at_s=1.0, slot=0, outage_s=0.5,
                              device_class=GPU),)
        )
        scheduler.apply_device_faults(now=2.0)
        gpu_slot = [s for s in scheduler.slots if s.device_class == GPU][0]
        gpu_slot.resident_signature = "reloaded"
        scheduler.apply_device_faults(now=3.0)
        scheduler.apply_device_faults(now=4.0)
        assert gpu_slot.outages == 1
        assert gpu_slot.resident_signature == "reloaded"

    def test_fault_for_absent_class_is_consumed_without_effect(self):
        scheduler = MicroBatchScheduler(
            fleet=FleetSpec(devices=1, slots_per_device=2),
            profiles={},
            device_faults=(
                DeviceFaultEvent(at_s=1.0, slot=0, outage_s=0.5,
                                 device_class=GPU),
            ),
        )
        for slot in scheduler.slots:
            slot.resident_signature = "plan"
        scheduler.apply_device_faults(now=2.0)
        assert all(s.resident_signature == "plan" for s in scheduler.slots)
        assert all(s.outages == 0 for s in scheduler.slots)
