"""Tests for the span/counter telemetry layer."""

import json

import pytest

from repro import telemetry as tm
from repro.telemetry import TELEMETRY_SCHEMA_VERSION, SpanStats, Telemetry


class TestSpanStats:
    def test_record_accumulates(self):
        stats = SpanStats()
        stats.record(2.0)
        stats.record(4.0)
        assert stats.count == 2
        assert stats.total_ms == 6.0
        assert stats.mean_ms == 3.0
        assert stats.max_ms == 4.0

    def test_empty_mean_is_zero(self):
        assert SpanStats().mean_ms == 0.0

    def test_merged_with(self):
        a = SpanStats(count=2, total_ms=10.0, max_ms=7.0)
        b = SpanStats(count=1, total_ms=3.0, max_ms=3.0)
        merged = a.merged_with(b)
        assert merged.count == 3
        assert merged.total_ms == 13.0
        assert merged.max_ms == 7.0


class TestTelemetry:
    def test_span_records_wall_time(self):
        collector = Telemetry()
        with collector.span("stage"):
            pass
        assert collector.spans["stage"].count == 1
        assert collector.spans["stage"].total_ms >= 0.0

    def test_counters(self):
        collector = Telemetry()
        collector.count("events")
        collector.count("events", 4)
        assert collector.counters["events"] == 5

    def test_merge_with_collector_and_dict(self):
        a = Telemetry()
        with a.span("stage"):
            pass
        a.count("events", 2)
        b = Telemetry()
        with b.span("stage"):
            pass
        b.count("events", 3)
        a.merge(b)
        assert a.spans["stage"].count == 2
        assert a.counters["events"] == 5
        c = Telemetry()
        c.merge(a.as_dict())
        assert c.spans["stage"].count == 2
        assert c.counters["events"] == 5

    def test_as_dict_schema(self):
        collector = Telemetry()
        with collector.span("stage"):
            pass
        collector.count("events")
        document = collector.as_dict()
        assert document["schema_version"] == TELEMETRY_SCHEMA_VERSION
        stage = document["spans"]["stage"]
        assert set(stage) == {"count", "total_ms", "mean_ms", "max_ms"}
        assert document["counters"] == {"events": 1}

    def test_write_json(self, tmp_path):
        collector = Telemetry()
        collector.count("events")
        path = collector.write_json(tmp_path / "telemetry.json")
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["events"] == 1

    def test_merge_with_plain_mapping_payload(self):
        # A hand-built Mapping (not produced by as_dict) must merge: the
        # worker protocol promises dict-shape, not a Telemetry instance.
        collector = Telemetry()
        collector.merge({
            "spans": {"stage": {"count": 2, "total_ms": 8.0, "max_ms": 5.0}},
            "counters": {"events": 3},
        })
        assert collector.spans["stage"].count == 2
        assert collector.spans["stage"].max_ms == 5.0
        assert collector.counters["events"] == 3

    def test_merge_with_empty_mapping_is_noop(self):
        collector = Telemetry()
        collector.count("events")
        collector.merge({})
        assert collector.counters == {"events": 1}
        assert collector.spans == {}

    def test_merge_zero_count_span(self):
        # Zero-count spans appear when a worker opened a stage name but
        # recorded nothing; merging one must not skew mean/max.
        collector = Telemetry()
        with collector.span("stage"):
            pass
        before = collector.spans["stage"].as_dict()
        collector.merge({
            "spans": {"stage": {"count": 0, "total_ms": 0.0, "max_ms": 0.0}},
        })
        after = collector.spans["stage"]
        assert after.count == 1
        assert after.as_dict() == before
        collector.merge({
            "spans": {"fresh": {"count": 0, "total_ms": 0.0, "max_ms": 0.0}},
        })
        assert collector.spans["fresh"].count == 0
        assert collector.spans["fresh"].mean_ms == 0.0


class TestDistributions:
    def test_observe_collects_values(self):
        collector = Telemetry()
        collector.observe("latency", 2.0)
        collector.observe("latency", 4.0)
        assert collector.distributions["latency"] == [2.0, 4.0]

    def test_as_dict_summarizes_and_keeps_raw_values(self):
        collector = Telemetry()
        for value in [1.0, 2.0, 3.0, 4.0]:
            collector.observe("latency", value)
        summary = collector.as_dict()["distributions"]["latency"]
        assert summary["count"] == 4
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5
        assert summary["max"] == 4.0
        assert summary["values"] == [1.0, 2.0, 3.0, 4.0]

    def test_distributions_key_absent_when_empty(self):
        # Schema v1 compatibility: reports without observations look
        # exactly like pre-distribution reports.
        assert "distributions" not in Telemetry().as_dict()

    def test_merge_is_associative_across_dict_form(self):
        a, b = Telemetry(), Telemetry()
        a.observe("latency", 1.0)
        b.observe("latency", 9.0)
        direct = Telemetry()
        direct.merge(a)
        direct.merge(b)
        via_dict = Telemetry()
        via_dict.merge(a.as_dict())
        via_dict.merge(b.as_dict())
        assert direct.distributions == via_dict.distributions
        assert (
            direct.as_dict()["distributions"]
            == via_dict.as_dict()["distributions"]
        )

    def test_module_level_observe_routes_to_active(self):
        collector = Telemetry()
        with collector.activate():
            tm.observe("latency", 7.0)
        tm.observe("ignored", 1.0)  # no active collector: must not raise
        assert collector.distributions == {"latency": [7.0]}


class TestPercentile:
    def test_empty_and_singleton(self):
        from repro.telemetry import percentile

        assert percentile([], 50.0) == 0.0
        assert percentile([3.0], 99.0) == 3.0

    def test_matches_numpy_linear_interpolation(self):
        import numpy as np

        from repro.telemetry import percentile

        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )


class TestModuleLevelAPI:
    def test_noop_without_active_collector(self):
        assert tm.active() is None
        with tm.span("ignored"):
            pass
        tm.count("ignored")  # must not raise

    def test_activation_routes_to_collector(self):
        collector = Telemetry()
        with collector.activate():
            assert tm.active() is collector
            with tm.span("stage"):
                tm.count("events")
        assert tm.active() is None
        assert collector.spans["stage"].count == 1
        assert collector.counters["events"] == 1

    def test_activation_nests_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        with outer.activate():
            with inner.activate():
                tm.count("events")
            tm.count("events")
        assert inner.counters["events"] == 1
        assert outer.counters["events"] == 1

    def test_instrumented_solve_records_decision_loop(self):
        from repro import Acamar
        from repro.datasets import poisson_2d

        problem = poisson_2d(12)
        collector = Telemetry()
        with collector.activate():
            Acamar().solve(problem.matrix, problem.b)
        assert collector.spans["matrix_structure.select"].count == 1
        assert collector.spans["fine_grained.plan"].count == 1
        assert collector.spans["reconfigurable_solver.attempt"].count >= 1
        assert collector.counters["solver_attempts.cg"] >= 1
