"""Tests for the span/counter telemetry layer."""

import json

from repro import telemetry as tm
from repro.telemetry import TELEMETRY_SCHEMA_VERSION, SpanStats, Telemetry


class TestSpanStats:
    def test_record_accumulates(self):
        stats = SpanStats()
        stats.record(2.0)
        stats.record(4.0)
        assert stats.count == 2
        assert stats.total_ms == 6.0
        assert stats.mean_ms == 3.0
        assert stats.max_ms == 4.0

    def test_empty_mean_is_zero(self):
        assert SpanStats().mean_ms == 0.0

    def test_merged_with(self):
        a = SpanStats(count=2, total_ms=10.0, max_ms=7.0)
        b = SpanStats(count=1, total_ms=3.0, max_ms=3.0)
        merged = a.merged_with(b)
        assert merged.count == 3
        assert merged.total_ms == 13.0
        assert merged.max_ms == 7.0


class TestTelemetry:
    def test_span_records_wall_time(self):
        collector = Telemetry()
        with collector.span("stage"):
            pass
        assert collector.spans["stage"].count == 1
        assert collector.spans["stage"].total_ms >= 0.0

    def test_counters(self):
        collector = Telemetry()
        collector.count("events")
        collector.count("events", 4)
        assert collector.counters["events"] == 5

    def test_merge_with_collector_and_dict(self):
        a = Telemetry()
        with a.span("stage"):
            pass
        a.count("events", 2)
        b = Telemetry()
        with b.span("stage"):
            pass
        b.count("events", 3)
        a.merge(b)
        assert a.spans["stage"].count == 2
        assert a.counters["events"] == 5
        c = Telemetry()
        c.merge(a.as_dict())
        assert c.spans["stage"].count == 2
        assert c.counters["events"] == 5

    def test_as_dict_schema(self):
        collector = Telemetry()
        with collector.span("stage"):
            pass
        collector.count("events")
        document = collector.as_dict()
        assert document["schema_version"] == TELEMETRY_SCHEMA_VERSION
        stage = document["spans"]["stage"]
        assert set(stage) == {"count", "total_ms", "mean_ms", "max_ms"}
        assert document["counters"] == {"events": 1}

    def test_write_json(self, tmp_path):
        collector = Telemetry()
        collector.count("events")
        path = collector.write_json(tmp_path / "telemetry.json")
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["events"] == 1


class TestModuleLevelAPI:
    def test_noop_without_active_collector(self):
        assert tm.active() is None
        with tm.span("ignored"):
            pass
        tm.count("ignored")  # must not raise

    def test_activation_routes_to_collector(self):
        collector = Telemetry()
        with collector.activate():
            assert tm.active() is collector
            with tm.span("stage"):
                tm.count("events")
        assert tm.active() is None
        assert collector.spans["stage"].count == 1
        assert collector.counters["events"] == 1

    def test_activation_nests_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        with outer.activate():
            with inner.activate():
                tm.count("events")
            tm.count("events")
        assert inner.counters["events"] == 1
        assert outer.counters["events"] == 1

    def test_instrumented_solve_records_decision_loop(self):
        from repro import Acamar
        from repro.datasets import poisson_2d

        problem = poisson_2d(12)
        collector = Telemetry()
        with collector.activate():
            Acamar().solve(problem.matrix, problem.b)
        assert collector.spans["matrix_structure.select"].count == 1
        assert collector.spans["fine_grained.plan"].count == 1
        assert collector.spans["reconfigurable_solver.attempt"].count >= 1
        assert collector.counters["solver_attempts.cg"] >= 1
