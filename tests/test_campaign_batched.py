"""Campaign-level parity harness for the batched backend.

The acceptance bar for batching is *byte-identity of the campaign CSV*:
turning ``batch=True`` on, changing the worker count, or switching the
kernel substrate may change wall-clock time and telemetry, but never a
single byte of the scientific output.  These tests run a
fingerprint-sharing population (duplicated dataset keys resolve to
identical matrices) through every combination and diff the CSVs.
"""

import numpy as np

from repro.campaign import run_campaign, solve_group
from repro.config import AcamarConfig
from repro.datasets import poisson_2d
from repro.parallel import WorkItem
from repro.telemetry import Telemetry

# Duplicated keys make fingerprint groups; distinct keys stay singletons.
POPULATION = ["2C", "Of", "2C", "Wi", "2C", "Of"]


def campaign_csv(tmp_path, name, **kwargs) -> bytes:
    report = run_campaign(POPULATION, **kwargs)
    path = report.to_csv(tmp_path / name)
    return path.read_bytes()


class TestCsvByteIdentity:
    def test_batch_on_off_identical(self, tmp_path):
        off = campaign_csv(tmp_path, "off.csv", batch=False)
        on = campaign_csv(tmp_path, "on.csv", batch=True)
        assert on == off

    def test_batch_identical_across_worker_counts(self, tmp_path):
        serial = campaign_csv(tmp_path, "serial.csv", batch=True)
        sharded = campaign_csv(tmp_path, "sharded.csv", batch=True, workers=2)
        assert sharded == serial

    def test_batch_identical_under_numpy_substrate(self, tmp_path):
        from repro.sparse.substrate import use_substrate

        baseline = campaign_csv(tmp_path, "base.csv", batch=False)
        with use_substrate("numpy"):
            routed = campaign_csv(tmp_path, "numpy.csv", batch=True)
        assert routed == baseline


class TestSolveGroup:
    def _items(self, problems):
        return [
            WorkItem(index=i, source=p, seed=1 + i, cost=float(p.matrix.nnz))
            for i, p in enumerate(problems)
        ]

    def test_shared_group_entries_match_individual(self):
        config = AcamarConfig()
        problems = [poisson_2d(12), poisson_2d(12), poisson_2d(12)]
        grouped = solve_group(self._items(problems), config)
        solo = [
            solve_group(self._items([p]), config)[0] for p in problems
        ]
        # solve_group reindexes per call; compare the scientific payload.
        for g, s in zip(grouped, solo):
            assert g.error is None and s.error is None
            assert g.entry == s.entry

    def test_group_counters_recorded(self):
        config = AcamarConfig()
        problems = [poisson_2d(12), poisson_2d(12)]
        collector = Telemetry()
        with collector.activate():
            results = solve_group(self._items(problems), config)
        assert all(r.error is None for r in results)
        merged = collector.as_dict()["counters"]
        for r in results:
            for name, value in r.telemetry.get("counters", {}).items():
                merged[name] = merged.get(name, 0) + value
        assert merged.get("batch.groups", 0) >= 1
        assert merged.get("batch.items", 0) >= 2

    def test_value_mismatch_same_pattern_not_shared(self):
        """Same fingerprint but different values must not share analysis
        (the symmetry verdict reads values) — and must still be right."""
        config = AcamarConfig()
        a = poisson_2d(12)
        scaled = a.matrix.with_data(
            (a.matrix.data * np.float32(2.0)).astype(a.matrix.data.dtype)
        )
        b = type(a)(
            name="poisson-scaled",
            matrix=scaled,
            b=a.b.copy(),
        )
        results = solve_group(self._items([a, b]), config)
        assert all(r.error is None for r in results)
        solo = [
            solve_group(self._items([p]), config)[0] for p in [a, b]
        ]
        for g, s in zip(results, solo):
            assert g.entry == s.entry


class TestReportEquivalence:
    def test_entries_identical_not_just_csv(self):
        """Belt and braces: compare the in-memory entries field by field."""
        off = run_campaign(POPULATION, batch=False)
        on = run_campaign(POPULATION, batch=True)
        assert len(on.entries) == len(off.entries)
        for a, b in zip(on.entries, off.entries):
            assert a == b
