"""Tests for the evaluation metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.device import ALVEO_U55C
from repro.fpga.kernels import SweepReport
from repro.metrics import (
    achieved_throughput_fraction,
    area_saving_ratio,
    geometric_mean,
    gflops_per_mm2,
    latency_speedup,
    spmv_achieved_fraction,
)


class TestSpeedup:
    def test_basic(self):
        assert latency_speedup(2.0, 1.0) == 2.0
        assert latency_speedup(1.0, 2.0) == 0.5

    def test_zero_candidate_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_guards(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            geometric_mean([-2.0])


class TestThroughput:
    def test_perfect_sweep_hits_one(self):
        device = ALVEO_U55C
        # 100 slot cycles fully busy, no fill: fraction 1.
        report = SweepReport(
            cycles=100.0,
            busy_mac_cycles=800.0,
            provisioned_mac_cycles=800.0,
            flops=1600.0,
        )
        assert achieved_throughput_fraction(report, 0, device) == pytest.approx(1.0)

    def test_fill_cycles_reduce_fraction(self):
        device = ALVEO_U55C
        fill = device.pipeline_fill_cycles
        report = SweepReport(
            cycles=100.0 + fill,
            busy_mac_cycles=800.0,
            provisioned_mac_cycles=800.0,
            flops=1600.0,
        )
        fraction = achieved_throughput_fraction(report, 1, device)
        assert fraction == pytest.approx(100.0 / (100.0 + fill))

    def test_partial_occupancy(self):
        device = ALVEO_U55C
        report = SweepReport(100.0, 400.0, 800.0, 800.0)
        assert achieved_throughput_fraction(report, 0, device) == pytest.approx(0.5)

    def test_degenerate_inputs(self):
        device = ALVEO_U55C
        empty = SweepReport(0.0, 0.0, 0.0, 0.0)
        assert achieved_throughput_fraction(empty, 0, device) == 0.0
        with pytest.raises(ConfigurationError):
            achieved_throughput_fraction(empty, -1, device)

    def test_fill_only_sweep_gives_zero(self):
        device = ALVEO_U55C
        report = SweepReport(
            cycles=float(device.pipeline_fill_cycles),
            busy_mac_cycles=1.0,
            provisioned_mac_cycles=1.0,
            flops=2.0,
        )
        assert achieved_throughput_fraction(report, 1, device) == 0.0

    def test_simple_fraction(self):
        report = SweepReport(10.0, 3.0, 4.0, 6.0)
        assert spmv_achieved_fraction(report) == pytest.approx(0.75)
        assert spmv_achieved_fraction(SweepReport(0, 0, 0, 0)) == 0.0


class TestEfficiency:
    def test_gflops_per_mm2(self):
        device = ALVEO_U55C
        # 1 second worth of cycles, 1e9 FLOPs, 1 mm^2 -> 1 GFLOPS/mm^2.
        report = SweepReport(device.clock_hz, 0.0, 0.0, 1e9)
        assert gflops_per_mm2(report, 1.0, device) == pytest.approx(1.0)

    def test_zero_area_rejected(self):
        with pytest.raises(ConfigurationError):
            gflops_per_mm2(SweepReport(1, 0, 0, 1), 0.0, ALVEO_U55C)

    def test_zero_cycles_gives_zero(self):
        assert gflops_per_mm2(SweepReport(0, 0, 0, 1), 1.0, ALVEO_U55C) == 0.0

    def test_area_saving(self):
        assert area_saving_ratio(0.02, 0.01) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            area_saving_ratio(1.0, 0.0)
