"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense() -> np.ndarray:
    """A fixed 4x4 matrix with an empty row-interior and a zero entry."""
    return np.array(
        [
            [4.0, -1.0, 0.0, 0.0],
            [-1.0, 4.0, -1.0, 0.0],
            [0.0, -1.0, 4.0, -1.0],
            [0.0, 0.0, -1.0, 4.0],
        ]
    )


@pytest.fixture
def small_csr(small_dense) -> CSRMatrix:
    return CSRMatrix.from_dense(small_dense)


def random_dense(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    density: float = 0.2,
) -> np.ndarray:
    """Random sparse-pattern dense array (helper, not a fixture)."""
    mask = rng.random((n_rows, n_cols)) < density
    values = rng.standard_normal((n_rows, n_cols))
    return np.where(mask, values, 0.0)


@pytest.fixture
def spd_system(rng):
    """A well-conditioned SPD system with a known solution (n=120)."""
    n = 120
    dense = random_dense(rng, n, n, density=0.05)
    dense = dense + dense.T
    dense += np.diag(np.abs(dense).sum(axis=1) + 1.0)
    matrix = CSRMatrix.from_dense(dense)
    x_true = rng.standard_normal(n)
    b = matrix.matvec(x_true).astype(np.float32)
    return matrix, b, x_true
