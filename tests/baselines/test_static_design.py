"""Tests for the static-design baseline."""

import numpy as np
import pytest

from repro.baselines import StaticDesign, run_solver_portfolio
from repro.config import AcamarConfig
from repro.datasets import load_problem, poisson_2d
from repro.errors import ConfigurationError


class TestStaticDesign:
    def test_runs_fixed_solver(self):
        problem = poisson_2d(12)
        result = StaticDesign("cg", spmv_urb=8).solve(problem.matrix, problem.b)
        assert result.converged
        assert result.solver == "cg"

    def test_no_fallback_on_divergence(self):
        """The whole point of Table II: a static design just fails."""
        problem = load_problem("If")  # only bicgstab converges
        result = StaticDesign("jacobi", spmv_urb=8).solve(problem.matrix, problem.b)
        assert result.status.failed

    def test_invalid_urb(self):
        with pytest.raises(ConfigurationError):
            StaticDesign("cg", spmv_urb=0)

    def test_config_shared_with_acamar(self):
        problem = poisson_2d(12)
        config = AcamarConfig(tolerance=1e-3, dtype=np.float64)
        design = StaticDesign("cg", spmv_urb=8, config=config)
        result = design.solve(problem.matrix, problem.b)
        assert result.converged
        assert result.x.dtype == np.float64
        assert result.final_residual <= 1e-3

    def test_latency_uses_fixed_urb(self):
        problem = poisson_2d(12)
        design = StaticDesign("cg", spmv_urb=4)
        result = design.solve(problem.matrix, problem.b)
        latency = design.latency(problem.matrix, result)
        assert latency.reconfig_events == 0
        wide = StaticDesign("cg", spmv_urb=32)
        assert (
            wide.latency(problem.matrix, result).compute_seconds
            < latency.compute_seconds
        )


class TestPortfolio:
    def test_runs_all_three_paper_solvers(self):
        problem = poisson_2d(10)
        results = run_solver_portfolio(problem.matrix, problem.b)
        assert set(results) == {"jacobi", "cg", "bicgstab"}
        assert all(r.converged for r in results.values())

    def test_custom_solver_list(self):
        problem = poisson_2d(10)
        results = run_solver_portfolio(
            problem.matrix, problem.b, solvers=("gauss_seidel",)
        )
        assert set(results) == {"gauss_seidel"}
        assert results["gauss_seidel"].converged
