"""Tests for the reproduction-summary module."""

from repro.experiments.summary import collect_claims, run

SUBSET = ("2C", "Wi", "Fe", "Bc", "If", "Po")


class TestSummary:
    def test_all_claims_hold_on_subset(self):
        checks = collect_claims(SUBSET)
        failing = [c for c in checks if not c.holds]
        assert not failing, failing

    def test_covers_every_evaluation_artifact(self):
        checks = collect_claims(SUBSET)
        experiments = {c.experiment for c in checks}
        assert experiments == {
            "Table II", "Figure 1", "Figure 2", "Figure 5", "Figure 6",
            "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
            "Figure 12", "Figure 13",
        }

    def test_table_rendering(self):
        table = run(SUBSET)
        assert table.headers == ("experiment", "claim", "paper", "measured", "holds")
        assert len(table.rows) == 12
        assert "claims hold" in table.notes[0]
