"""Tests for the golden-band regression harness."""

import json

from repro.experiments.regression import (
    BENCH_GUARDED_PREFIXES,
    check_regression,
    load_bands,
    measure_headlines,
    save_bands,
)

SUBSET = ("2C", "Wi", "Fe", "Bc", "If", "Po")


class TestBandsFile:
    def test_reference_file_exists_and_is_complete(self):
        bands = load_bands()
        # hotpath_*/serving_* entries are pinned by their own benchmark
        # guards (bench_hot_path.py, bench_serving.py), not by the
        # modeled headline metrics measured here.
        headline_bands = {
            k for k in bands if not k.startswith(BENCH_GUARDED_PREFIXES)
        }
        assert headline_bands == set(measure_headlines(SUBSET))
        assert bands["table2_matches"] == 25.0

    def test_hotpath_bands_are_present(self):
        bands = load_bands()
        assert "hotpath_bicgstab_speedup" in bands
        assert "hotpath_bicg_speedup" in bands

    def test_serving_bands_are_present(self):
        bands = load_bands()
        assert "serving_warm_p50_ms" in bands
        assert "serving_cache_speedup" in bands

    def test_check_regression_skips_bench_guarded_keys(self, tmp_path):
        bands = load_bands()
        save_bands(bands, tmp_path / "bands.json")
        checks = check_regression(SUBSET, path=tmp_path / "bands.json")
        checked = {c.name for c in checks}
        assert not any(
            name.startswith(BENCH_GUARDED_PREFIXES) for name in checked
        )
        assert "table2_matches" in checked

    def test_save_roundtrip(self, tmp_path):
        values = {"a": 1.5, "b": 2.0}
        path = save_bands(values, tmp_path / "bands.json")
        assert load_bands(path) == values


class TestChecks:
    def test_full_run_matches_recorded_bands(self):
        """The live 25-dataset metrics sit inside their own bands."""
        checks = check_regression()
        drifted = [c for c in checks if not c.within_band]
        assert not drifted, drifted

    def test_subset_against_custom_bands(self, tmp_path):
        measured = measure_headlines(SUBSET)
        path = save_bands(measured, tmp_path / "bands.json")
        checks = check_regression(SUBSET, path=path)
        assert all(c.within_band for c in checks)

    def test_drift_detected(self, tmp_path):
        measured = measure_headlines(SUBSET)
        measured["fig6_gmean_urb1"] *= 2.0  # fabricate a drift
        path = save_bands(measured, tmp_path / "bands.json")
        checks = check_regression(SUBSET, path=path)
        drifted = {c.name for c in checks if not c.within_band}
        assert "fig6_gmean_urb1" in drifted
