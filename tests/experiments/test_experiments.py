"""Tests for the experiment harness — shape claims on a dataset subset.

The full 25-dataset sweeps live in the benchmarks; these tests check every
experiment's *claims* (the properties the paper's figures demonstrate) on a
representative subset covering all structural classes.
"""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.experiments import (
    ALL_EXPERIMENTS,
    fig1,
    fig10,
    fig11,
    fig12,
    fig13,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
)
from repro.experiments.runner import resolve_keys

SUBSET = ("2C", "Wi", "Fe", "Bc", "If", "Po")
"""One dataset from each structural class (all five Table II patterns)."""


class TestRunner:
    def test_resolve_none_gives_all(self):
        assert len(resolve_keys(None)) == 25

    def test_resolve_validates(self):
        with pytest.raises(DatasetError):
            resolve_keys(("nope",))

    def test_experiment_index_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig1", "fig2", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "ext_coverage", "ext_kernel_mix", "ext_precision",
        }


class TestTable1:
    def test_renders_eleven_criteria(self):
        table = table1.run()
        assert len(table.rows) == 11


class TestTable2:
    def test_patterns_match_on_subset(self):
        table = table2.run(SUBSET)
        assert all(table.column("matches paper"))
        assert all(table.column("Acamar"))


class TestFig1:
    def test_spmv_dominates(self):
        table = fig1.run(SUBSET)
        shares = table.column("spmv_share")
        assert np.mean(shares) > 0.5
        assert all(0.0 < s < 1.0 for s in shares)


class TestFig2:
    def test_no_single_best_unroll(self):
        table = fig2.run(SUBSET)
        assert len(set(table.column("best URB"))) > 1

    def test_underutilization_grows_at_large_unroll(self):
        table = fig2.run(SUBSET)
        assert np.mean(table.column("URB=64")) > np.mean(table.column("URB=4"))


class TestFig5:
    def test_rate_monotone_and_saturating(self):
        table = fig5.run(SUBSET)
        mean_row = table.rows[-1]
        assert mean_row[0] == "MEAN"
        rates = list(mean_row[1:])
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
        # flat beyond rOpt=8 (paper's pick); the drop from rOpt=8 to
        # rOpt=12 must be far smaller than the drop from 0 to 8
        tail = rates[-3] - rates[-1]
        head = rates[0] - rates[-3]
        assert tail < 0.1
        assert tail < head / 2


class TestFig6:
    def test_speedup_large_at_urb1_and_flattening(self):
        table = fig6.run(SUBSET)
        gmean = table.rows[-1]
        assert gmean[0] == "GMEAN"
        values = list(gmean[1:])
        assert values[0] > 3.0  # URB=1: order-of-magnitude territory
        assert values[0] > values[2] > values[3]  # decaying
        assert abs(values[-1] - values[-2]) < 0.15  # flat past URB=32


class TestFig7:
    def test_improvement_grows_with_baseline_unroll(self):
        table = fig7.run(SUBSET)
        per_row = [row[1:] for row in table.rows]
        for values in per_row:
            assert values[-1] > values[0]

    def test_reaches_paper_scale(self):
        table = fig7.run(SUBSET)
        assert max(max(row[1:]) for row in table.rows) > 1.8


class TestFig8:
    def test_acamar_beats_gpu_everywhere(self):
        table = fig8.run(SUBSET)
        for row in table.rows[:-1]:
            assert row[1] < row[2], row


class TestFig9:
    def test_acamar_near_paper_average(self):
        table = fig9.run(SUBSET)
        mean = table.rows[-1]
        assert 0.55 < mean[1] < 0.9  # paper: ~70%
        assert mean[3] < 0.02  # GPU a few percent at most


class TestFig10:
    def test_acamar_more_area_efficient_on_average(self):
        table = fig10.run(SUBSET)
        mean = table.rows[-1]
        assert mean[1] > mean[2] * 0.8  # efficiency at least comparable
        assert mean[5] > 1.0  # positive mean area saving


class TestFig11:
    def test_latency_drift_small(self):
        table = fig11.run(SUBSET)
        lat_columns = [i for i, h in enumerate(table.headers) if h.startswith("lat@")]
        for row in table.rows:
            for i in lat_columns:
                assert abs(row[i] - 1.0) < 0.25


class TestFig12:
    def test_underutilization_decreases_with_sampling(self):
        table = fig12.run(SUBSET)
        mean = table.rows[-1]
        assert mean[1] > mean[-1]  # S=4 worse than S=256


class TestFig13:
    def test_budget_positive_for_reference_urb(self):
        table = fig13.run(SUBSET)
        budgets = table.column("budget_ms")
        assert all(b > 0 for b in budgets)
