"""Tests for the experiment report formatting."""

from repro.experiments.report import ExperimentTable, format_cell, format_table


class TestFormatCell:
    def test_booleans_render_as_marks(self):
        assert format_cell(True) == "Y"
        assert format_cell(False) == "x"

    def test_floats_compact(self):
        assert format_cell(0.123456) == "0.1235"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell(0.0000005) == "5.000e-07"
        assert format_cell(0.0) == "0"

    def test_strings_and_ints_pass_through(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert lines[1] == "---  ---"
        assert lines[2].split() == ["1", "2"]

    def test_indent(self):
        text = format_table(("h",), [(1,)], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())


class TestExperimentTable:
    def test_roundtrip(self):
        table = ExperimentTable("Fig X", "demo", ("id", "value"))
        table.add_row("a", 1.5)
        table.add_row("b", 2.5)
        table.add_note("hello")
        text = table.to_text()
        assert "== Fig X: demo ==" in text
        assert "note: hello" in text
        assert "1.5" in text

    def test_column_extraction(self):
        table = ExperimentTable("T", "t", ("id", "value"))
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("value") == [1, 2]
        assert table.column("id") == ["a", "b"]


class TestRenderSeries:
    def make_table(self):
        table = ExperimentTable("T", "t", ("id", "value"))
        table.add_row("a", 4.0)
        table.add_row("b", 2.0)
        table.add_row("c", 0.0)
        return table

    def test_bars_scale_to_peak(self):
        art = self.make_table().render_series("id", "value", width=8)
        lines = art.splitlines()
        assert lines[1].count("#") == 8   # the peak
        assert lines[2].count("#") == 4   # half the peak
        assert lines[3].count("#") == 0

    def test_non_numeric_cells_skipped(self):
        table = ExperimentTable("T", "t", ("id", "value"))
        table.add_row("a", "n/a")
        table.add_row("b", 1.5)
        art = table.render_series("id", "value")
        assert "n/a" not in art
        assert "1.5" in art

    def test_empty_numeric_column(self):
        table = ExperimentTable("T", "t", ("id", "value"))
        table.add_row("a", "x")
        assert "no numeric" in table.render_series("id", "value")

    def test_booleans_excluded(self):
        table = ExperimentTable("T", "t", ("id", "flag"))
        table.add_row("a", True)
        assert "no numeric" in table.render_series("id", "flag")
