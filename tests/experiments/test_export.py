"""Tests for CSV/JSON experiment export."""

import csv
import json

from repro.experiments import fig2
from repro.experiments.export import (
    export_all,
    export_table_csv,
    export_table_json,
)

SUBSET = ("2C", "Wi")


class TestSingleTable:
    def test_csv_roundtrip(self, tmp_path):
        table = fig2.run(SUBSET)
        path = export_table_csv(table, tmp_path / "fig2.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert tuple(rows[0]) == table.headers
        assert len(rows) == len(table.rows) + 1
        assert rows[1][0] == "2C"

    def test_json_payload(self, tmp_path):
        table = fig2.run(SUBSET)
        path = export_table_json(table, tmp_path / "fig2.json")
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "Figure 2"
        assert payload["headers"] == list(table.headers)
        assert len(payload["rows"]) == len(table.rows)
        assert payload["notes"] == list(table.notes)


class TestExportAll:
    def test_writes_every_artifact(self, tmp_path):
        files = export_all(tmp_path / "out", SUBSET)
        names = {f.name for f in files}
        # 16 experiments + summary, twice (csv + json)
        assert len(files) == 34
        assert "ext_coverage.csv" in names
        assert "table2.csv" in names
        assert "fig13.json" in names
        assert "summary.csv" in names
        for f in files:
            assert f.exists() and f.stat().st_size > 0

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_all(target, SUBSET)
        assert target.is_dir()
